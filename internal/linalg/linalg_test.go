package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At wrong: %v", m)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
	tp := m.T()
	if tp.At(0, 1) != 3 || tp.At(1, 0) != 2 {
		t.Fatalf("transpose wrong: %v", tp)
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("Mul wrong:\n%v", c)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := a.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if !almostEq(v[i], want[i], 1e-12) {
			t.Fatalf("MulVec = %v, want %v", v, want)
		}
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(7, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	g := a.Gram()
	explicit := a.T().Mul(a)
	if g.MaxAbsDiff(explicit) > 1e-10 {
		t.Fatal("Gram != AᵀA")
	}
}

func TestLUSolve(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	x, err := Solve(a, []float64{10, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 2, 1e-10) {
		t.Fatalf("Solve = %v, want [1 2]", x)
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}})
	if !almostEq(Det(a), 24, 1e-10) {
		t.Fatalf("Det = %v, want 24", Det(a))
	}
	// Permuted rows flip the sign.
	b := FromRows([][]float64{{0, 3, 0}, {2, 0, 0}, {0, 0, 4}})
	if !almostEq(Det(b), -24, 1e-10) {
		t.Fatalf("Det = %v, want -24", Det(b))
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected singular error")
	}
	if Det(a) != 0 {
		t.Fatal("Det of singular should be 0")
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		inv, err := Inverse(a)
		if err != nil {
			continue // randomly singular is vanishingly unlikely but allowed
		}
		prod := a.Mul(inv)
		if prod.MaxAbsDiff(Identity(n)) > 1e-8 {
			t.Fatalf("A·A⁻¹ != I for n=%d", n)
		}
	}
}

func TestLogDetGram(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	// AᵀA = [[2,1],[1,2]], det = 3.
	got := LogDetGram(a)
	if !almostEq(got, math.Log(3), 1e-10) {
		t.Fatalf("LogDetGram = %v, want ln 3", got)
	}
	// Rank-deficient design -> -Inf.
	b := FromRows([][]float64{{1, 1}, {2, 2}})
	if !math.IsInf(LogDetGram(b), -1) {
		t.Fatal("LogDetGram of singular gram should be -Inf")
	}
}

func TestQRSolveExact(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 2}, {1, 3}})
	// y = 2 + 3x exactly.
	b := []float64{5, 8, 11}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-9) || !almostEq(x[1], 3, 1e-9) {
		t.Fatalf("LeastSquares = %v, want [2 3]", x)
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(20, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Residual must be orthogonal to column space: Aᵀ(b − Ax) ≈ 0.
	pred := a.MulVec(x)
	resid := make([]float64, len(b))
	for i := range b {
		resid[i] = b[i] - pred[i]
	}
	g := a.T().MulVec(resid)
	for _, v := range g {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("residual not orthogonal: %v", g)
		}
	}
}

func TestRidgeFallbackRankDeficient(t *testing.T) {
	// Duplicate column makes plain QR rank-deficient.
	a := FromRows([][]float64{{1, 1, 2}, {1, 1, 3}, {1, 1, 4}, {1, 1, 5}})
	b := []float64{1, 2, 3, 4}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred := a.MulVec(x)
	for i := range b {
		if !almostEq(pred[i], b[i], 1e-3) {
			t.Fatalf("ridge fallback poor fit: pred=%v want %v", pred, b)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatal("Mean")
	}
	if !almostEq(Variance(xs), 1.25, 1e-12) {
		t.Fatal("Variance")
	}
	if !almostEq(StdDev(xs), math.Sqrt(1.25), 1e-12) {
		t.Fatal("StdDev")
	}
	if SSE([]float64{1, 2}, []float64{0, 0}) != 5 {
		t.Fatal("SSE")
	}
	if !almostEq(MeanAbsPctError([]float64{110}, []float64{100}), 10, 1e-12) {
		t.Fatal("MeanAbsPctError")
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

// Property: for random well-conditioned systems, Solve(A, A·x) recovers x.
func TestPropertyLUSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := Identity(n)
		// Diagonally dominant random matrix: always nonsingular.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				if i == j {
					v += float64(n) + 2
				}
				a.Set(i, j, a.At(i, j)+v)
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinant is multiplicative for small random matrices.
func TestPropertyDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a, b := NewMatrix(n, n), NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		da, db, dab := Det(a), Det(b), Det(a.Mul(b))
		scale := math.Max(1, math.Abs(da*db))
		return math.Abs(dab-da*db)/scale < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQRMatchesRidgeOnFullRank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 12+rng.Intn(10), 2+rng.Intn(4)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err1 := LeastSquares(a, b)
		x2, err2 := RidgeLeastSquares(a, b, 1e-10)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2")
	}
	if Dist2([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Fatal("Dist2")
	}
}
