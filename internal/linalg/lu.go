package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64 // +1 or -1, parity of the permutation
}

// FactorLU computes the LU factorization of a square matrix A with partial
// pivoting. A is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot.
		p, maxv := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: piv, sign: sign}, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// LogDet returns log|det A| and the sign of det A. Preferred over Det for
// D-optimality comparisons, where determinants over/underflow easily.
func (f *LU) LogDet() (logAbs, sign float64) {
	sign = f.sign
	logAbs = 0
	for i := 0; i < f.lu.Rows; i++ {
		d := f.lu.At(i, i)
		if d < 0 {
			sign = -sign
			d = -d
		}
		logAbs += math.Log(d)
	}
	return logAbs, sign
}

// Solve solves A*x = b for x, where b has length n.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, errors.New("linalg: Solve dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Inverse returns A⁻¹ from the factorization.
func (f *LU) Inverse() (*Matrix, error) {
	n := f.lu.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Det returns the determinant of square matrix a, or 0 if singular.
func Det(a *Matrix) float64 {
	f, err := FactorLU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// LogDetGram returns log det(XᵀX) for a design matrix X, or -Inf if the
// information matrix is singular.
func LogDetGram(x *Matrix) float64 {
	f, err := FactorLU(x.Gram())
	if err != nil {
		return math.Inf(-1)
	}
	logAbs, sign := f.LogDet()
	if sign <= 0 {
		return math.Inf(-1)
	}
	return logAbs
}

// Solve solves the square system A*x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹ for square A.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}
