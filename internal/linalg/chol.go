package linalg

import (
	"errors"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ. It is the factorization of choice for Gram
// (normal-equation) systems: half the flops of LU and no pivoting.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a symmetric
// positive definite matrix. Only the lower triangle of a is read; a is not
// modified. Returns ErrSingular when a is not (numerically) positive
// definite.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		li := l.Row(i)
		for j := 0; j <= i; j++ {
			lj := l.Row(j)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				li[j] = math.Sqrt(s)
			} else {
				li[j] = s / lj[j]
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b using the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, errors.New("linalg: Cholesky solve dimension mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	// Forward substitution L·y = b.
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	// Back substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// InverseDiag returns the diagonal of A⁻¹ from the factorization — the only
// part of the inverse leave-one-out/drop-one formulas need. Column j of the
// inverse costs one pair of triangular solves, but only entry j of each is
// kept, so the columns can stop early on the forward pass.
func (c *Cholesky) InverseDiag() []float64 {
	n := c.l.Rows
	diag := make([]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		// Forward substitution; entries above j stay zero.
		for i := j; i < n; i++ {
			row := c.l.Row(i)
			s := e[i]
			for k := j; k < i; k++ {
				s -= row[k] * e[k]
			}
			e[i] = s / row[i]
		}
		// Back substitution, only down to row j.
		for i := n - 1; i >= j; i-- {
			s := e[i]
			for k := i + 1; k < n; k++ {
				s -= c.l.At(k, i) * e[k]
			}
			e[i] = s / c.l.At(i, i)
		}
		diag[j] = e[j]
	}
	return diag
}

// LogDet returns log det A = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.l.Rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}
