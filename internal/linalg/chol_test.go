package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPD builds A = BᵀB + I, which is symmetric positive definite.
func randomSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			if i == j {
				s += 1
			}
			a.Set(i, j, s)
		}
	}
	return a
}

func TestCholeskySolveMatchesDirectSolve(t *testing.T) {
	a := randomSPD(8, 1)
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, 8)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Residual check: A·x ≈ b.
	ax := a.MulVec(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-9 {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
	if _, err := c.Solve(make([]float64, 3)); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestCholeskyInverseDiagAndLogDet(t *testing.T) {
	a := randomSPD(7, 3)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	diag := c.InverseDiag()
	for i := range diag {
		if math.Abs(diag[i]-inv.At(i, i)) > 1e-9 {
			t.Fatalf("InverseDiag[%d] = %v, want %v", i, diag[i], inv.At(i, i))
		}
	}
	if got, want := c.LogDet(), LogDetGram(identityFactor(a)); math.IsNaN(got) || math.Abs(got-want) > 1e-8 {
		t.Fatalf("LogDet = %v, want %v", got, want)
	}
}

// identityFactor returns a matrix X with XᵀX = a: since a = LLᵀ, X = Lᵀ.
func identityFactor(a *Matrix) *Matrix {
	c, err := FactorCholesky(a)
	if err != nil {
		panic(err)
	}
	n := a.Rows
	x := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, c.l.At(j, i))
		}
	}
	return x
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1) // indefinite
	if _, err := FactorCholesky(a); err == nil {
		t.Error("indefinite matrix should fail")
	}
	r := NewMatrix(2, 3)
	if _, err := FactorCholesky(r); err == nil {
		t.Error("non-square matrix should fail")
	}
}
