package linalg

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SSE returns the sum of squared differences Σ(pred−actual)².
func SSE(pred, actual []float64) float64 {
	s := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return s
}

// MeanAbsPctError returns the mean of |pred-actual|/|actual| in percent.
// Entries with actual == 0 are skipped.
func MeanAbsPctError(pred, actual []float64) float64 {
	s, n := 0.0, 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dist2 returns the squared Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
