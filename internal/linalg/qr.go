package linalg

import (
	"errors"
	"math"
)

// QR holds a Householder QR factorization of an m x n matrix (m >= n):
// A = Q*R with Q orthogonal (m x m, stored implicitly) and R upper
// triangular (n x n).
type QR struct {
	qr    *Matrix   // Householder vectors below the diagonal, R on/above it
	rdiag []float64 // diagonal of R
}

// FactorQR computes the QR factorization of a. a is not modified.
func FactorQR(a *Matrix) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, errors.New("linalg: QR requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute 2-norm of column k below row k, with scaling for stability.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply transformation to remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// IsFullRank reports whether R has no (near-)zero diagonal entries.
func (f *QR) IsFullRank() bool {
	const tol = 1e-12
	maxd := 0.0
	for _, d := range f.rdiag {
		if v := math.Abs(d); v > maxd {
			maxd = v
		}
	}
	thresh := tol * maxd
	for _, d := range f.rdiag {
		if math.Abs(d) <= thresh {
			return false
		}
	}
	return len(f.rdiag) > 0
}

// Solve returns the least-squares solution x minimizing ‖A·x − b‖₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, errors.New("linalg: QR solve dimension mismatch")
	}
	if !f.IsFullRank() {
		return nil, ErrSingular
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder reflections: y = Qᵀ b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares returns x minimizing ‖A·x − b‖₂ via QR; falls back to a
// ridge-regularized normal-equations solve when A is rank deficient, so
// callers always get a usable coefficient vector.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows >= a.Cols {
		if f, err := FactorQR(a); err == nil {
			if x, err := f.Solve(b); err == nil {
				return x, nil
			}
		}
	}
	return RidgeLeastSquares(a, b, 1e-8)
}

// RidgeLeastSquares solves (AᵀA + λI) x = Aᵀ b. λ > 0 guarantees a solution
// even for rank-deficient A.
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, errors.New("linalg: ridge dimension mismatch")
	}
	g := a.Gram()
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+lambda)
	}
	atb := a.T().MulVec(b)
	return Solve(g, atb)
}
