// Package linalg provides the dense linear algebra needed by the empirical
// modeling and experimental design code: matrices, LU and QR decompositions,
// linear solves, determinants and least squares. It is deliberately small,
// allocation-conscious and dependency-free.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (shared storage) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Gram returns mᵀ·m, the k x k information matrix of an n x k design matrix.
func (m *Matrix) Gram() *Matrix {
	out := NewMatrix(m.Cols, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			orow := out.Row(i)
			for j, vj := range row {
				orow[j] += vi * vj
			}
		}
	}
	return out
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.4g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and b. Useful in tests.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return math.Inf(1)
	}
	d := 0.0
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}
