package farm

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"syscall"
)

// Class buckets job failures for the retry policy: compile errors are
// deterministic and permanent, simulation budget overruns are permanent but
// reported distinctly (they usually mean a miscompile produced an infinite
// loop), and store/IO hiccups are transient and worth a bounded retry.
type Class int

const (
	// ClassPermanent errors fail the job immediately: retrying a
	// deterministic compile or simulation cannot change the outcome.
	ClassPermanent Class = iota
	// ClassBudget marks a simulation that exceeded its instruction budget.
	// Permanent like a compile error, but surfaced separately in stats and
	// logs because it points at the budget knob rather than the program.
	ClassBudget
	// ClassTransient errors (journal write failures, other IO) are retried
	// up to Options.MaxRetries with backoff.
	ClassTransient
)

func (c Class) String() string {
	switch c {
	case ClassBudget:
		return "budget"
	case ClassTransient:
		return "transient"
	}
	return "permanent"
}

// CompileError wraps a failure of the compile stage of a job.
type CompileError struct {
	Workload string
	Err      error
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("farm: compile %s: %v", e.Workload, e.Err)
}

func (e *CompileError) Unwrap() error { return e.Err }

// SimError wraps a failure of the simulate stage of a job. Budget is set
// when the simulation ran out of its instruction budget.
type SimError struct {
	Workload string
	Budget   bool
	Err      error
}

func (e *SimError) Error() string {
	if e.Budget {
		return fmt.Sprintf("farm: simulate %s: budget overrun: %v", e.Workload, e.Err)
	}
	return fmt.Sprintf("farm: simulate %s: %v", e.Workload, e.Err)
}

func (e *SimError) Unwrap() error { return e.Err }

// RemoteError reconstructs a worker-side failure on the coordinator: the
// message travelled the wire as text, so the original error type is gone,
// but the class travelled with it and must keep steering the retry policy
// (a remote budget overrun stays a budget overrun; a remote compile failure
// stays permanent).
type RemoteError struct {
	Msg   string
	Class Class
}

func (e *RemoteError) Error() string { return e.Msg }

// ClassFromString parses the wire form produced by Class.String.
func ClassFromString(s string) Class {
	switch s {
	case "budget":
		return ClassBudget
	case "transient":
		return ClassTransient
	}
	return ClassPermanent
}

type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as retryable regardless of its underlying type.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// Classify maps an error to its retry class. Unrecognized errors are
// permanent: the compiler and simulator are deterministic, so an unknown
// failure will recur on retry.
func Classify(err error) Class {
	if err == nil {
		return ClassPermanent
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassPermanent
	}
	var ce *CompileError
	if errors.As(err, &ce) {
		return ClassPermanent
	}
	var se *SimError
	if errors.As(err, &se) {
		if se.Budget {
			return ClassBudget
		}
		return ClassPermanent
	}
	var te *transientError
	if errors.As(err, &te) {
		return ClassTransient
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Class
	}
	// Filesystem and syscall errors come from the result store; the disk
	// may recover (full tmpfs, interrupted write), so retry.
	var pe *fs.PathError
	var errno syscall.Errno
	if errors.As(err, &pe) || errors.As(err, &errno) {
		return ClassTransient
	}
	return ClassPermanent
}
