package farm

import (
	"context"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/sim"
	"repro/internal/smarts"
)

// testSampler is small enough that the tiny workload produces a healthy
// number of detailed windows.
func testSampler() smarts.Sampler {
	return smarts.Sampler{WindowSize: 200, Interval: 10, Warmup: 100}
}

// memLatVariants returns configurations sharing one binary (same issue
// width) and one warm geometry, differing only in a pure timing parameter —
// exactly the redundancy warm checkpoints amortize.
func memLatVariants(lats ...int) []sim.Config {
	cfgs := make([]sim.Config, len(lats))
	for i, l := range lats {
		c := sim.DefaultConfig()
		c.MemLat = l
		cfgs[i] = c
	}
	return cfgs
}

// TestSampledFarmMatchesDirect pins the sampled farm mode to the direct
// smarts path: every measurement must be bit-for-bit the estimate
// smarts.Run produces, whether it was built fresh or replayed from a warm
// checkpoint, and the counters must account for every sampled sim.
func TestSampledFarmMatchesDirect(t *testing.T) {
	s := testSampler()
	f := New(Options{Workers: 2, Sampler: &s})
	defer f.Close()
	w := tinyWorkload()
	o2 := compiler.O2()

	for i, cfg := range memLatVariants(100, 60, 150) {
		p := jointPoint(o2, cfg)
		got, err := f.Measure(context.Background(), w, p, Cycles)
		if err != nil {
			t.Fatal(err)
		}
		prog, _, err := compiler.Compile(w.Parse(), doe.ToOptions(p, cfg.IssueWidth))
		if err != nil {
			t.Fatal(err)
		}
		want, err := smarts.Run(prog, cfg, s, 500_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if want.Windows == 0 {
			t.Fatal("workload produced no sample windows; enlarge it or shrink the sampler")
		}
		if got != want.EstimatedCycles {
			t.Errorf("variant %d: farm estimate %v != direct estimate %v", i, got, want.EstimatedCycles)
		}
		gotE, err := f.Measure(context.Background(), w, p, Energy)
		if err != nil {
			t.Fatal(err)
		}
		if gotE != want.EstimatedEnergy {
			t.Errorf("variant %d: farm energy %v != direct energy %v", i, gotE, want.EstimatedEnergy)
		}
	}

	st := f.Stats()
	if st.SampledSims != 3 {
		t.Errorf("SampledSims = %d, want 3", st.SampledSims)
	}
	if st.WarmCkptMisses != 1 || st.WarmCkptHits != 2 {
		t.Errorf("checkpoint traffic = %d hits / %d misses, want 2/1 (one build, two replays)",
			st.WarmCkptHits, st.WarmCkptMisses)
	}
	if st.BinaryGroups != 0 || st.TraceSharedSims != 0 {
		t.Errorf("shared-trace grouping ran in sampled mode: %+v", st)
	}
	if st.BlocksTranslated != 0 || st.TranslatedInstrs != 0 {
		t.Errorf("translated-engine counters moved in sampled mode: %+v", st)
	}
}

// TestSampledBatchDisablesGrouping submits a same-binary batch in sampled
// mode and checks the planner degraded to per-job execution with the
// checkpoint store carrying the redundancy instead.
func TestSampledBatchDisablesGrouping(t *testing.T) {
	s := testSampler()
	f := New(Options{Workers: 4, Sampler: &s})
	defer f.Close()
	w := tinyWorkload()
	o2 := compiler.O2()
	var points []doe.Point
	for _, cfg := range memLatVariants(50, 80, 110, 140) {
		points = append(points, jointPoint(o2, cfg))
	}
	vals, err := f.MeasureBatch(context.Background(), w, points, Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v <= 0 {
			t.Errorf("point %d: nonpositive estimate %v", i, v)
		}
	}
	st := f.Stats()
	if st.BinaryGroups != 0 || st.TraceSharedSims != 0 {
		t.Errorf("sampled batch formed shared-trace groups: %+v", st)
	}
	if st.SampledSims != 4 {
		t.Errorf("SampledSims = %d, want 4", st.SampledSims)
	}
	// Workers race for the first checkpoint build, so several can miss and
	// build concurrently; what is guaranteed is full accounting and at
	// least one build.
	if st.WarmCkptHits+st.WarmCkptMisses != st.SampledSims || st.WarmCkptMisses < 1 {
		t.Errorf("checkpoint traffic = %d hits / %d misses for %d sampled sims",
			st.WarmCkptHits, st.WarmCkptMisses, st.SampledSims)
	}
}

// TestSampledStatsConsistentUnderLoad hammers the sampled pipeline while
// readers assert the checkpoint counters are never observed torn: every
// sampled sim is exactly one checkpoint hit or miss (the pair is bumped in
// one critical section), and sims complete only after their sampled
// accounting (a completed sim can never outrun SampledSims).
func TestSampledStatsConsistentUnderLoad(t *testing.T) {
	s := testSampler()
	f := New(Options{Workers: 4, Sampler: &s})
	defer f.Close()
	w := tinyWorkload()

	stop := make(chan struct{})
	torn := make(chan string, 1)
	report := func(msg string) {
		select {
		case torn <- msg:
		default:
		}
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := f.Stats()
				if st.WarmCkptHits+st.WarmCkptMisses != st.SampledSims {
					report("torn snapshot: checkpoint hits+misses != sampled sims")
					return
				}
				if st.SimsExecuted > st.SampledSims {
					report("torn snapshot: completed sims outran sampled accounting")
					return
				}
				if st.BlocksTranslated != 0 {
					report("translated-engine counter moved in sampled mode")
					return
				}
			}
		}()
	}

	o2, o3 := compiler.O2(), compiler.O3()
	for round := 0; round < 3; round++ {
		var points []doe.Point
		for i, cfg := range memLatVariants(50, 90, 120) {
			cfg.MemLat += 5 * ((round + i) % 7)
			points = append(points, jointPoint(o2, cfg), jointPoint(o3, cfg))
		}
		if _, err := f.MeasureBatch(context.Background(), w, points, Cycles); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	select {
	case msg := <-torn:
		t.Fatal(msg)
	default:
	}
	st := f.Stats()
	if st.WarmCkptHits == 0 {
		t.Fatalf("no checkpoint replays under load: %+v", st)
	}
}
