package farm

import (
	"context"

	"repro/internal/doe"
	"repro/internal/workloads"
)

// Backend is the measurement-plane contract: everything the experiment
// harness and the HTTP service need from "the thing that turns jobs into
// results". The in-process Farm and the distributed coordinator
// (internal/dist) both satisfy it, so swapping one plane for the other is a
// construction-time decision — no exp or serve call site changes.
//
// Implementations must preserve the farm's semantics: results keyed by
// point and order-independent (bit-for-bit reproducible), single-flight
// deduplication of concurrent requests for the same point, and a
// caller-visible durable Store that Checkpoint flushes.
type Backend interface {
	// Do runs one job, deduplicated against concurrent requests.
	Do(ctx context.Context, job Job) (Result, error)
	// DoJobs runs a batch, planning jobs that share a binary into
	// compile-once/interpret-once groups; one result and one error per
	// job, in input order.
	DoJobs(ctx context.Context, jobs []Job) ([]Result, []error)
	// Measure and MeasureBatch are the response-selecting conveniences
	// every experiment path calls.
	Measure(ctx context.Context, w workloads.Workload, p doe.Point, resp Response) (float64, error)
	MeasureBatch(ctx context.Context, w workloads.Workload, points []doe.Point, resp Response) ([]float64, error)
	// Store exposes the backend's result store. For the distributed plane
	// the store is coordinator-owned: workers are stateless measurers.
	Store() *Store
	// Stats snapshots the backend's instrumentation counters tear-free.
	Stats() Stats
	// Checkpoint flushes the store's journal into its durable checkpoint.
	Checkpoint() error
	// Close stops the backend and closes the store. New work is rejected
	// afterwards.
	Close() error
}

// Drainer is the optional graceful-shutdown half of a Backend: stop
// admitting new work to executors, let in-flight work finish while ctx
// lasts, and requeue (abandon without losing store state) the rest. The
// distributed coordinator implements it so SIGTERM can bound how long
// outstanding worker leases are honoured; the in-process farm does not need
// it — Close already drains its queue.
type Drainer interface {
	Drain(ctx context.Context) error
}

// The in-process farm is the reference Backend implementation.
var _ Backend = (*Farm)(nil)
