package farm

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func testJob(seed int64) Job {
	rng := rand.New(rand.NewSource(seed))
	return Job{
		Workload: workloads.MustGet("179.art", workloads.Train),
		Point:    doe.JointSpace().RandomPoint(rng),
	}
}

// pointValue derives a deterministic fake measurement from a point so stub
// executors behave like the real (deterministic) pipeline.
func pointValue(p doe.Point) float64 {
	v := 1.0
	for _, x := range p {
		v = v*31 + float64(x)
	}
	return v
}

func TestSingleFlightDedup(t *testing.T) {
	const callers = 16
	gate := make(chan struct{})
	var executions atomic.Int64
	f := New(Options{
		Workers: 4,
		Measure: func(ctx context.Context, job Job) (Result, error) {
			executions.Add(1)
			<-gate
			return Result{Cycles: pointValue(job.Point), Energy: 1}, nil
		},
	})
	defer f.Close()

	job := testJob(1)
	results := make(chan float64, callers)
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			v, err := f.Measure(context.Background(), job.Workload, job.Point, Cycles)
			results <- v
			errs <- err
		}()
	}
	// Wait until every caller has either queued the job or joined it, then
	// release the (single) execution.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := f.Stats()
		if st.CacheMisses+st.Coalesced == callers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("callers never coalesced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	want := pointValue(job.Point)
	for i := 0; i < callers; i++ {
		if v := <-results; v != want {
			t.Fatalf("caller %d got %v, want %v", i, v, want)
		}
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("expected exactly 1 execution for %d concurrent callers, got %d", callers, n)
	}
	st := f.Stats()
	if st.CacheMisses != 1 || st.Coalesced != callers-1 {
		t.Fatalf("stats: misses=%d coalesced=%d, want 1/%d", st.CacheMisses, st.Coalesced, callers-1)
	}

	// A later request for the same point is a store hit, not an execution.
	if _, err := f.Measure(context.Background(), job.Workload, job.Point, Energy); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.CacheHits != 1 {
		t.Fatalf("expected 1 cache hit after completion, got %d", st.CacheHits)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("cache hit re-executed: %d executions", n)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	var attempts atomic.Int64
	f := New(Options{
		Workers:    1,
		MaxRetries: 3,
		RetryDelay: time.Millisecond,
		Measure: func(ctx context.Context, job Job) (Result, error) {
			if attempts.Add(1) <= 2 {
				return Result{}, Transient(errors.New("flaky io"))
			}
			return Result{Cycles: 7, Energy: 3}, nil
		},
	})
	defer f.Close()
	v, err := f.Measure(context.Background(), testJob(2).Workload, testJob(2).Point, Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 || attempts.Load() != 3 {
		t.Fatalf("v=%v attempts=%d, want 7/3", v, attempts.Load())
	}
	if st := f.Stats(); st.Retries != 2 {
		t.Fatalf("retries=%d, want 2", st.Retries)
	}
}

func TestTransientRetryExhausts(t *testing.T) {
	var attempts atomic.Int64
	f := New(Options{
		Workers:    1,
		MaxRetries: 2,
		RetryDelay: time.Millisecond,
		Measure: func(ctx context.Context, job Job) (Result, error) {
			attempts.Add(1)
			return Result{}, Transient(errors.New("disk on fire"))
		},
	})
	defer f.Close()
	_, err := f.Measure(context.Background(), testJob(3).Workload, testJob(3).Point, Cycles)
	if err == nil {
		t.Fatal("expected error after retry budget exhausted")
	}
	if attempts.Load() != 3 { // 1 try + 2 retries
		t.Fatalf("attempts=%d, want 3", attempts.Load())
	}
	if st := f.Stats(); st.Failures != 1 {
		t.Fatalf("failures=%d, want 1", st.Failures)
	}
}

func TestPermanentFailsFast(t *testing.T) {
	var attempts atomic.Int64
	f := New(Options{
		Workers:    1,
		MaxRetries: 5,
		RetryDelay: time.Millisecond,
		Measure: func(ctx context.Context, job Job) (Result, error) {
			attempts.Add(1)
			return Result{}, &CompileError{Workload: job.Workload.Key(), Err: errors.New("syntax error")}
		},
	})
	defer f.Close()
	_, err := f.Measure(context.Background(), testJob(4).Workload, testJob(4).Point, Cycles)
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CompileError, got %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("permanent error retried: %d attempts", attempts.Load())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{&CompileError{Workload: "w", Err: errors.New("x")}, ClassPermanent},
		{&SimError{Workload: "w", Budget: true, Err: errors.New("x")}, ClassBudget},
		{&SimError{Workload: "w", Err: errors.New("fault")}, ClassPermanent},
		{Transient(errors.New("x")), ClassTransient},
		{&fs.PathError{Op: "write", Path: "j", Err: errors.New("x")}, ClassTransient},
		{context.Canceled, ClassPermanent},
		{context.DeadlineExceeded, ClassPermanent},
		{errors.New("mystery"), ClassPermanent},
		{fmt.Errorf("wrapped: %w", &SimError{Budget: true}), ClassBudget},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestContextCancellationDrains(t *testing.T) {
	started := make(chan struct{}, 64)
	f := New(Options{
		Workers: 2,
		Measure: func(ctx context.Context, job Job) (Result, error) {
			started <- struct{}{}
			<-ctx.Done() // simulate a long job that honours cancellation
			return Result{}, ctx.Err()
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	w := workloads.MustGet("179.art", workloads.Train)
	rng := rand.New(rand.NewSource(5))
	var points []doe.Point
	for i := 0; i < 8; i++ {
		points = append(points, doe.JointSpace().RandomPoint(rng))
	}
	done := make(chan error, 1)
	go func() {
		_, err := f.MeasureBatch(ctx, w, points, Cycles)
		done <- err
	}()
	<-started // at least one job is running
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("batch error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch did not return after cancellation")
	}
	// Workers must drain cleanly: queued-but-unstarted jobs observe the
	// cancelled context and finish without executing, so Close returns.
	closed := make(chan error, 1)
	go func() { closed <- f.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain workers after cancellation")
	}
}

func TestMeasureBatchOrderAndValues(t *testing.T) {
	f := New(Options{
		Workers: 8,
		Measure: func(ctx context.Context, job Job) (Result, error) {
			return Result{Cycles: pointValue(job.Point), Energy: 2 * pointValue(job.Point)}, nil
		},
	})
	defer f.Close()
	w := workloads.MustGet("256.bzip2", workloads.Train)
	rng := rand.New(rand.NewSource(6))
	var points []doe.Point
	for i := 0; i < 50; i++ {
		points = append(points, doe.JointSpace().RandomPoint(rng))
	}
	got, err := f.MeasureBatch(context.Background(), w, points, Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if got[i] != pointValue(p) {
			t.Fatalf("index %d: got %v want %v", i, got[i], pointValue(p))
		}
	}
	// Energy rides along from the same executions: all store hits now.
	st := f.Stats()
	en, err := f.MeasureBatch(context.Background(), w, points, Energy)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if en[i] != 2*pointValue(p) {
			t.Fatalf("energy index %d: got %v want %v", i, en[i], 2*pointValue(p))
		}
	}
	st2 := f.Stats()
	if st2.SimsExecuted != st.SimsExecuted {
		t.Fatalf("energy batch re-simulated: %d -> %d", st.SimsExecuted, st2.SimsExecuted)
	}
	if st2.CacheHits-st.CacheHits != int64(len(points)) {
		t.Fatalf("expected %d cache hits, got %d", len(points), st2.CacheHits-st.CacheHits)
	}
}

func TestExecutorBudgetClassification(t *testing.T) {
	f := New(Options{Workers: 1, MaxInstrs: 100}) // far below any real run
	defer f.Close()
	job := Job{
		Workload: workloads.MustGet("179.art", workloads.Train),
		Point: doe.JoinPoint(
			doe.FromOptions(compiler.O2()),
			doe.FromConfig(sim.DefaultConfig()),
		),
	}
	_, err := f.Do(context.Background(), job)
	if err == nil {
		t.Fatal("expected budget overrun")
	}
	if Classify(err) != ClassBudget {
		t.Fatalf("Classify(%v) = %v, want ClassBudget", err, Classify(err))
	}
	if st := f.Stats(); st.BudgetOverruns != 1 {
		t.Fatalf("budget overruns = %d, want 1", st.BudgetOverruns)
	}
}

func TestFarmClosedRejectsWork(t *testing.T) {
	f := New(Options{Workers: 1, Measure: func(ctx context.Context, job Job) (Result, error) {
		return Result{Cycles: 1}, nil
	}})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := f.Do(context.Background(), testJob(7)); err == nil {
		t.Fatal("expected error from closed farm")
	}
}

// TestStatsConsistentUnderLoad pins the snapshot guarantee of Stats: every
// counter is read under one lock acquisition, so counters that the farm
// updates together can never be observed torn. The stub executor reports a
// fixed instruction count per simulation, making the invariant exact:
// InstrsSimulated must equal perSim * SimsExecuted in *every* snapshot, no
// matter when it is taken relative to in-flight updates. Run with -race this
// also exercises the stats lock against the measurement path.
func TestStatsConsistentUnderLoad(t *testing.T) {
	const perSim = 1000
	f := New(Options{
		Workers: 8,
		Measure: func(ctx context.Context, job Job) (Result, error) {
			return Result{Cycles: pointValue(job.Point), Energy: 1, Instructions: perSim}, nil
		},
	})
	defer f.Close()

	stop := make(chan struct{})
	torn := make(chan string, 1)
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := f.Stats()
				if st.InstrsSimulated != perSim*st.SimsExecuted {
					select {
					case torn <- fmt.Sprintf("torn snapshot: %d instrs for %d sims",
						st.InstrsSimulated, st.SimsExecuted):
					default:
					}
					return
				}
				if st.SimsExecuted+st.Failures > st.CacheMisses {
					select {
					case torn <- fmt.Sprintf("more completions (%d) than misses (%d)",
						st.SimsExecuted+st.Failures, st.CacheMisses):
					default:
					}
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(7))
	w := workloads.MustGet("179.art", workloads.Train)
	space := doe.JointSpace()
	for round := 0; round < 4; round++ {
		points := make([]doe.Point, 64)
		for i := range points {
			points[i] = space.RandomPoint(rng)
		}
		if _, err := f.MeasureBatch(context.Background(), w, points, Cycles); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	select {
	case msg := <-torn:
		t.Fatal(msg)
	default:
	}
	st := f.Stats()
	if st.SimsExecuted == 0 {
		t.Fatal("no simulations ran")
	}
	if st.InstrsSimulated != perSim*st.SimsExecuted {
		t.Fatalf("final stats inconsistent: %d instrs for %d sims", st.InstrsSimulated, st.SimsExecuted)
	}
}
