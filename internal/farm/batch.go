package farm

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/smarts"
	"repro/internal/workloads"
)

// BinaryKey returns the identity of the compiled binary a job needs: the
// workload (name and source text) plus everything the compiler sees — the
// 14-flag compiler subvector and the target issue width, which
// doe.ToOptions reads out of the microarchitecture block for scheduling.
// Two jobs with equal binary keys compile to the same *isa.Program, and
// therefore produce the same committed-instruction stream; only the timing
// differs. The version tag is shared with Key so semantic changes
// invalidate both identities together.
func BinaryKey(w workloads.Workload, p doe.Point) string {
	cfg := doe.ToConfig(p)
	h := fnv.New64a()
	fmt.Fprintf(h, "v3|%s|%s|w%d|", w.Key(), w.Source, cfg.IssueWidth)
	for _, v := range p[:doe.NumCompilerVars] {
		fmt.Fprintf(h, "%d,", v)
	}
	return fmt.Sprintf("%s|bin%x", w.Key(), h.Sum64())
}

// compileFn builds the binary for a job; the Farm's instance defaults to
// the real compiler and is swappable in tests to inject compile failures.
type compileFn func(w workloads.Workload, p doe.Point, cfg sim.Config) (*isa.Program, error)

func defaultCompile(w workloads.Workload, p doe.Point, cfg sim.Config) (*isa.Program, error) {
	prog, _, err := compiler.Compile(w.Parse(), doe.ToOptions(p, cfg.IssueWidth))
	return prog, err
}

// binEntry is one cache slot; ready is closed once prog/err are final.
type binEntry struct {
	key   string
	ready chan struct{}
	done  bool // guarded by binaryCache.mu; set before ready closes
	prog  *isa.Program
	err   error
}

// binaryCache is a bounded LRU of compiled binaries with single-flight
// builds: concurrent requests for the same key trigger one compile, with
// later callers waiting on the first. Failed builds are removed before
// their waiters wake, so an error is delivered to everyone who joined the
// attempt but never poisons the cache — the next request compiles afresh.
type binaryCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used, of *binEntry
}

func newBinaryCache(capacity int) *binaryCache {
	return &binaryCache{cap: capacity, m: map[string]*list.Element{}, order: list.New()}
}

// get returns the binary for key, building it with build on a miss. hit
// reports whether the result came from the cache (including joining an
// in-flight build).
func (c *binaryCache) get(key string, build func() (*isa.Program, error)) (prog *isa.Program, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*binEntry)
		c.mu.Unlock()
		<-e.ready
		return e.prog, true, e.err
	}
	e := &binEntry{key: key, ready: make(chan struct{})}
	el := c.order.PushFront(e)
	c.m[key] = el
	// Evict least-recently-used completed entries; in-flight builds are
	// skipped (their waiters hold the entry anyway), so the cache may
	// briefly exceed cap under heavy concurrency.
	for back := c.order.Back(); c.order.Len() > c.cap && back != nil; {
		prev := back.Prev()
		if be := back.Value.(*binEntry); be.done {
			delete(c.m, be.key)
			c.order.Remove(back)
		}
		back = prev
	}
	c.mu.Unlock()

	prog, err = build()
	c.mu.Lock()
	e.prog, e.err = prog, err
	e.done = true
	if err != nil {
		// Never cache failures: waiters already holding e still see err,
		// but the next caller starts a fresh build.
		if cur, ok := c.m[key]; ok && cur == el {
			delete(c.m, key)
			c.order.Remove(el)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return prog, false, err
}

// len reports the number of cached (or in-flight) binaries.
func (c *binaryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// compileCached resolves a job's binary through the farm's binary cache,
// wrapping failures as CompileError for Classify.
func (f *Farm) compileCached(w workloads.Workload, p doe.Point) (*isa.Program, sim.Config, error) {
	cfg := doe.ToConfig(p)
	prog, hit, err := f.bins.get(BinaryKey(w, p), func() (*isa.Program, error) {
		prog, cerr := f.compile(w, p, cfg)
		if cerr != nil {
			return nil, &CompileError{Workload: w.Key(), Err: cerr}
		}
		return prog, nil
	})
	f.bump(func(s *counters) {
		if hit {
			s.compileHits++
		} else {
			s.compileMisses++
		}
	})
	return prog, cfg, err
}

// cachedExecutor is the farm's default MeasureFunc: Executor with the
// compile stage served by the shared binary cache. Detailed mode simulates
// through the basic-block translated engine; sampled mode (Options.Sampler)
// produces a SMARTS estimate through the warm-checkpoint store.
func (f *Farm) cachedExecutor(ctx context.Context, job Job) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	prog, cfg, err := f.compileCached(job.Workload, job.Point)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if f.sampler != nil {
		res, hit, err := smarts.RunCheckpointed(f.ckpts, prog, cfg, *f.sampler, f.maxInstrs)
		if err != nil {
			budget := errors.Is(err, smarts.ErrBudget) || sim.IsBudget(err)
			return Result{}, &SimError{Workload: job.Workload.Key(), Budget: budget, Err: err}
		}
		// One critical section per sampled sim: hits+misses == sampled in
		// every Stats snapshot.
		f.bump(func(s *counters) {
			s.sampledSims++
			if hit {
				s.ckptHits++
			} else {
				s.ckptMisses++
			}
		})
		return Result{
			Cycles:       res.EstimatedCycles,
			Energy:       res.EstimatedEnergy,
			Instructions: res.Instructions,
		}, nil
	}
	st, es, err := sim.SimulateEngine(prog, cfg, f.maxInstrs, sim.EngineBB)
	if err != nil {
		return Result{}, &SimError{Workload: job.Workload.Key(), Budget: sim.IsBudget(err), Err: err}
	}
	f.bump(func(s *counters) {
		s.blocksTranslated += es.BlocksTranslated
		s.translatedInstrs += es.TranslatedInstrs
		s.slowPathEntries += es.SlowPathEntries
	})
	return Result{
		Cycles:       float64(st.Cycles),
		Energy:       st.Energy,
		Instructions: st.Instructions,
	}, nil
}

// group is the batch-planner output one worker executes: tasks that share a
// binary. The first task carries the group through the queue; the others
// wait on their done channels like any coalesced caller.
type group struct {
	w     workloads.Workload
	tasks []*task
}

// DoJobs runs a batch of jobs through the cache, single-flight and
// worker-pool layers, returning one result and one error per job in input
// order. Unlike per-job Do calls it sees the whole batch at once, so jobs
// that compile to the same binary are planned into one group: the worker
// compiles once (through the binary cache) and runs one shared functional
// interpretation feeding a timing consumer per point (sim.SimulateMany),
// bit-for-bit identical to independent simulations. Grouping only applies
// with the default executor — a custom Measure owns the whole pipeline, so
// its batches degrade to per-job execution.
func (f *Farm) DoJobs(ctx context.Context, jobs []Job) ([]Result, []error) {
	res := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	tasks := make([]*task, len(jobs))
	pending := make([]int, 0, len(jobs)) // indices not served by the store

	for i, job := range jobs {
		key := Key(job.Workload, job.Point)
		if c, e, ok := f.store.Get2(key, EnergyKey(key)); ok {
			f.bump(func(s *counters) { s.hits++ })
			res[i] = Result{Cycles: c, Energy: e}
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return res, errs
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		for _, i := range pending {
			errs[i] = errFarmClosed
		}
		return res, errs
	}
	var fresh []*task // newly created tasks, first-seen order
	for _, i := range pending {
		job := jobs[i]
		key := Key(job.Workload, job.Point)
		if t, ok := f.inflight[key]; ok {
			f.bump(func(s *counters) { s.coalesced++ })
			tasks[i] = t
			continue
		}
		t := &task{job: job, key: key, ctx: ctx, done: make(chan struct{})}
		f.inflight[key] = t
		tasks[i] = t
		fresh = append(fresh, t)
		f.bump(func(s *counters) { s.misses++ })
	}
	if f.grouping {
		byBin := map[string][]*task{}
		var order []string
		for _, t := range fresh {
			bk := BinaryKey(t.job.Workload, t.job.Point)
			if _, ok := byBin[bk]; !ok {
				order = append(order, bk)
			}
			byBin[bk] = append(byBin[bk], t)
		}
		for _, bk := range order {
			ts := byBin[bk]
			if len(ts) > 1 {
				ts[0].group = &group{w: ts[0].job.Workload, tasks: ts}
			}
			f.queue = append(f.queue, ts[0]) // group members ride the leader
			f.cond.Signal()
		}
	} else {
		f.queue = append(f.queue, fresh...)
		for range fresh {
			f.cond.Signal()
		}
	}
	f.mu.Unlock()

	for _, i := range pending {
		t := tasks[i]
		select {
		case <-t.done:
			res[i], errs[i] = t.res, t.err
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
	}
	return res, errs
}

// runGroup executes one shared-binary group: compile once, interpret once,
// one timing consumer per point. Errors fan out to every member — a group
// failure is classified exactly like the per-job path (compile failures
// permanent, budget overruns ClassBudget), and the group path performs no
// transient retries because neither compile nor simulation can fail
// transiently (store IO retries live in persist).
func (f *Farm) runGroup(lead *task) {
	g := lead.group
	tasks := g.tasks
	results := make([]Result, len(tasks))
	errs := make([]error, len(tasks))
	fail := func(err error) {
		for i := range errs {
			errs[i] = err
		}
	}

	if cerr := lead.ctx.Err(); cerr != nil {
		fail(cerr)
	} else if prog, _, err := f.compileCached(g.w, lead.job.Point); err != nil {
		fail(err)
	} else {
		cfgs := make([]sim.Config, len(tasks))
		for i, t := range tasks {
			cfgs[i] = doe.ToConfig(t.job.Point)
		}
		stats, serr := sim.SimulateManyOpt(prog, cfgs, f.maxInstrs, sim.BatchOptions{MaxConsumers: f.maxConsumers})
		if serr != nil {
			fail(&SimError{Workload: g.w.Key(), Budget: sim.IsBudget(serr), Err: serr})
		} else {
			for i, st := range stats {
				results[i] = Result{
					Cycles:       float64(st.Cycles),
					Energy:       st.Energy,
					Instructions: st.Instructions,
				}
			}
		}
	}

	// One critical section for the whole group: a Stats snapshot always
	// sees the group's sims, instrs and shared-trace count move together.
	var okCount, failCount, budgetCount, instrSum int64
	for i := range tasks {
		if errs[i] == nil {
			okCount++
			instrSum += results[i].Instructions
		} else {
			failCount++
			if Classify(errs[i]) == ClassBudget {
				budgetCount++
			}
		}
	}
	f.bump(func(s *counters) {
		s.groups++
		s.dispatched++
		s.sims += okCount
		s.instrs += instrSum
		s.traceShared += okCount
		s.fails += failCount
		s.budgetOverruns += budgetCount
	})
	if errs[0] != nil {
		switch Classify(errs[0]) {
		case ClassBudget:
			f.logf("farm: %s: %v", g.w.Key(), errs[0])
		case ClassPermanent:
			f.logf("farm: %s: permanent failure (group of %d): %v", g.w.Key(), len(tasks), errs[0])
		}
	}
	for i, t := range tasks {
		if errs[i] == nil {
			if perr := f.persist(t.key, results[i]); perr != nil {
				f.logf("farm: store append for %s failed: %v", t.key, perr)
			}
		}
	}
	f.mu.Lock()
	for _, t := range tasks {
		delete(f.inflight, t.key)
	}
	f.mu.Unlock()
	for i, t := range tasks {
		t.res, t.err = results[i], errs[i]
		close(t.done)
	}
}
