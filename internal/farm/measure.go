package farm

import (
	"context"
	"fmt"
	"hash/fnv"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Job identifies one measurement: a workload compiled at the compiler
// settings of a joint-space design point and simulated on the
// microarchitecture of the same point.
type Job struct {
	Workload workloads.Workload
	Point    doe.Point
}

// Result carries every response one execution of a job produces. Cycles and
// energy come from the same simulation, so a single-flight execution
// satisfies requests for either response.
type Result struct {
	Cycles       float64
	Energy       float64
	Instructions int64
}

// Response selects which measurement of a Result a caller wants.
type Response int

const (
	// Cycles is the execution time response (the paper's primary metric).
	Cycles Response = iota
	// Energy is the activity-based energy estimate.
	Energy
)

// Value extracts the requested response from a result.
func (r Response) Value(res Result) float64 {
	if r == Energy {
		return res.Energy
	}
	return res.Cycles
}

// MeasureFunc executes one job. Implementations must be deterministic in the
// job (the farm's bit-for-bit reproducibility guarantee rests on it) and
// should respect ctx between expensive stages.
type MeasureFunc func(ctx context.Context, job Job) (Result, error)

// Key returns the store key for a job: the identity the single-flight map
// and the result store share. The format matches the pre-farm harness cache
// (`<workload>|<fnv64a of version-tag, workload source and point>`), so
// existing cache files stay valid. The source text participates so workload
// edits — and the version tag so compiler/simulator semantic changes —
// invalidate stale measurements.
func Key(w workloads.Workload, p doe.Point) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v3|%s|%s|", w.Key(), w.Source)
	for _, v := range p {
		fmt.Fprintf(h, "%d,", v)
	}
	return fmt.Sprintf("%s|%x", w.Key(), h.Sum64())
}

// EnergyKey is the store key of the energy response for a job key.
func EnergyKey(jobKey string) string { return jobKey + "|energy" }

// Executor returns the default MeasureFunc: compile the workload at the
// point's compiler settings, then simulate on the point's microarchitecture
// under the given instruction budget (0 means 500M, guarding miscompiled
// infinite loops). Errors are wrapped for Classify: compile failures are
// permanent, budget overruns report as ClassBudget.
func Executor(maxInstrs int64) MeasureFunc {
	if maxInstrs == 0 {
		maxInstrs = 500_000_000
	}
	return func(ctx context.Context, job Job) (Result, error) {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		cfg := doe.ToConfig(job.Point)
		opts := doe.ToOptions(job.Point, cfg.IssueWidth)
		prog, _, err := compiler.Compile(job.Workload.Parse(), opts)
		if err != nil {
			return Result{}, &CompileError{Workload: job.Workload.Key(), Err: err}
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		st, _, err := sim.SimulateEngine(prog, cfg, maxInstrs, sim.EngineBB)
		if err != nil {
			// Classify on the typed Budget flag, never on the message text:
			// a rewording of the fault message must not silently turn a
			// budget overrun into a permanent failure.
			return Result{}, &SimError{Workload: job.Workload.Key(), Budget: sim.IsBudget(err), Err: err}
		}
		return Result{
			Cycles:       float64(st.Cycles),
			Energy:       st.Energy,
			Instructions: st.Instructions,
		}, nil
	}
}
