package farm

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// tinySource is a synthetic MiniC workload small enough that a real
// compile+simulate runs in a few milliseconds — batch tests exercise the
// genuine pipeline without the cost of the benchmark suite.
const tinySource = `
int seed = 12345;
int rnd() {
	seed = (seed * 1103515245 + 12345) & 2147483647;
	return seed >> 7;
}
int data[1024];
int main() {
	int n = 1024;
	for (int i = 0; i < n; i = i + 1) {
		data[i] = rnd() % 256;
	}
	int sum = 0;
	for (int r = 0; r < 6; r = r + 1) {
		for (int i = 0; i < n; i = i + 1) {
			int v = data[(i * 7 + r) % n];
			if (v % 3 == 0) {
				sum = sum + v;
			} else {
				sum = sum ^ (v + r);
			}
		}
	}
	return sum & 1073741823;
}
`

func tinyWorkload() workloads.Workload {
	return workloads.Workload{Name: "900.tiny", Input: "test", Class: workloads.Train, Source: tinySource}
}

// jointPoint builds a full joint-space point from compiler options and a
// simulator configuration.
func jointPoint(opts compiler.Options, cfg sim.Config) doe.Point {
	return doe.JoinPoint(doe.FromOptions(opts), doe.FromConfig(cfg))
}

// mixedBatch builds the canonical mixed batch: two shared-binary groups
// (one per flag set and issue width), two singletons, and one duplicate
// point. Returns the points and the index of the duplicate's original.
func mixedBatch() []doe.Point {
	o2, o3 := compiler.O2(), compiler.O3()
	wide := sim.DefaultConfig() // issue width 4
	wideVariant := func(mut func(*sim.Config)) sim.Config {
		c := wide
		mut(&c)
		return c
	}
	narrow := sim.Constrained() // issue width 2
	narrowVariant := func(mut func(*sim.Config)) sim.Config {
		c := narrow
		mut(&c)
		return c
	}
	return []doe.Point{
		// Group A: O2 flags, issue width 4, five microarch variants.
		jointPoint(o2, wide),
		jointPoint(o2, sim.Aggressive()),
		jointPoint(o2, wideVariant(func(c *sim.Config) { c.MemLat = 150 })),
		jointPoint(o2, wideVariant(func(c *sim.Config) { c.BPredSize = 512 })),
		jointPoint(o2, wideVariant(func(c *sim.Config) { c.L2KB = 256; c.L2Lat = 6 })),
		// Group B: O3 flags, issue width 2, three microarch variants.
		jointPoint(o3, narrow),
		jointPoint(o3, narrowVariant(func(c *sim.Config) { c.DCacheKB = 64 })),
		jointPoint(o3, narrowVariant(func(c *sim.Config) { c.MemLat = 120 })),
		// Singletons: unique (flags, issue width) binaries.
		jointPoint(o2, narrowVariant(func(c *sim.Config) { c.ICacheKB = 16 })),
		jointPoint(o3, wideVariant(func(c *sim.Config) { c.RUUSize = 32 })),
		// Duplicate of the first group-A point: coalesces in flight.
		jointPoint(o2, wide),
	}
}

// TestMeasureBatchGroupedMatchesSerial is the farm-level identity test: a
// mixed batch (shared-binary groups, singletons, an in-batch duplicate)
// through the batch planner returns per-point results bit-for-bit equal to
// the plain per-job executor, for both responses, and the sharing counters
// add up.
func TestMeasureBatchGroupedMatchesSerial(t *testing.T) {
	w := tinyWorkload()
	points := mixedBatch()

	// Reference: the pre-batch path, one independent compile+simulate per
	// point.
	serial := Executor(0)
	want := make([]Result, len(points))
	for i, p := range points {
		res, err := serial(context.Background(), Job{Workload: w, Point: p})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	f := New(Options{Workers: 4})
	defer f.Close()
	cycles, err := f.MeasureBatch(context.Background(), w, points, Cycles)
	if err != nil {
		t.Fatal(err)
	}
	energy, err := f.MeasureBatch(context.Background(), w, points, Energy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if cycles[i] != want[i].Cycles || energy[i] != want[i].Energy {
			t.Errorf("point %d: grouped (%v cycles, %v energy) != serial (%v, %v)",
				i, cycles[i], energy[i], want[i].Cycles, want[i].Energy)
		}
	}

	st := f.Stats()
	if st.BinaryGroups != 2 {
		t.Errorf("BinaryGroups = %d, want 2", st.BinaryGroups)
	}
	if st.TraceSharedSims != 8 {
		t.Errorf("TraceSharedSims = %d, want 8 (5 + 3 grouped points)", st.TraceSharedSims)
	}
	// 4 distinct binaries: (O2,w4), (O3,w2), (O2,w2), (O3,w4).
	if st.CompileCacheMisses != 4 {
		t.Errorf("CompileCacheMisses = %d, want 4", st.CompileCacheMisses)
	}
	if st.SimsExecuted != 10 {
		t.Errorf("SimsExecuted = %d, want 10 unique points", st.SimsExecuted)
	}
	if st.Coalesced != 1 {
		t.Errorf("Coalesced = %d, want 1 (in-batch duplicate)", st.Coalesced)
	}

	// A fresh point on group A's binary is a compile-cache hit.
	extra := jointPoint(compiler.O2(), func() sim.Config {
		c := sim.DefaultConfig()
		c.L2Lat = 16
		return c
	}())
	if _, err := f.Do(context.Background(), Job{Workload: w, Point: extra}); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.CompileCacheHits != 1 {
		t.Errorf("CompileCacheHits = %d, want 1 after reusing a cached binary", st.CompileCacheHits)
	}
}

// TestGroupCompileFailureNoPoison injects one compile failure into a
// shared-binary group: every member of the group reports the permanent
// error, other work in the batch is unaffected, and the failure is not
// cached — resubmitting the points compiles afresh and succeeds with
// results identical to the serial path.
func TestGroupCompileFailureNoPoison(t *testing.T) {
	w := tinyWorkload()
	o2 := compiler.O2()
	wide := sim.DefaultConfig()
	groupPts := []doe.Point{
		jointPoint(o2, wide),
		jointPoint(o2, sim.Aggressive()),
		jointPoint(o2, func() sim.Config {
			c := wide
			c.MemLat = 50
			return c
		}()),
	}
	loner := jointPoint(compiler.O3(), sim.Constrained())
	points := append(append([]doe.Point{}, groupPts...), loner)

	f := New(Options{Workers: 2})
	defer f.Close()
	badKey := BinaryKey(w, groupPts[0])
	var failed atomic.Int64
	f.compile = func(cw workloads.Workload, p doe.Point, cfg sim.Config) (*isa.Program, error) {
		if BinaryKey(cw, p) == badKey && failed.CompareAndSwap(0, 1) {
			return nil, &CompileError{Workload: cw.Key(), Err: context.DeadlineExceeded}
		}
		return defaultCompile(cw, p, cfg)
	}

	jobs := make([]Job, len(points))
	for i, p := range points {
		jobs[i] = Job{Workload: w, Point: p}
	}
	res, errs := f.DoJobs(context.Background(), jobs)
	for i := range groupPts {
		if errs[i] == nil {
			t.Fatalf("group point %d: expected injected compile failure", i)
		}
		if Classify(errs[i]) != ClassPermanent {
			t.Errorf("group point %d: Classify = %v, want ClassPermanent", i, Classify(errs[i]))
		}
	}
	if errs[len(points)-1] != nil {
		t.Fatalf("singleton failed alongside the injected group failure: %v", errs[len(points)-1])
	}
	st := f.Stats()
	if st.Failures != 3 {
		t.Errorf("Failures = %d, want 3 (one per group member)", st.Failures)
	}

	// Resubmit: the failed compile must not have been cached.
	res, errs = f.DoJobs(context.Background(), jobs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("resubmitted point %d failed: %v (binary cache poisoned?)", i, err)
		}
		if res[i].Cycles == 0 {
			t.Fatalf("resubmitted point %d returned empty result", i)
		}
	}
	serial := Executor(0)
	for i, p := range points {
		ref, err := serial(context.Background(), Job{Workload: w, Point: p})
		if err != nil {
			t.Fatal(err)
		}
		if res[i].Cycles != ref.Cycles || res[i].Energy != ref.Energy {
			t.Errorf("point %d after retry: (%v, %v) != serial (%v, %v)",
				i, res[i].Cycles, res[i].Energy, ref.Cycles, ref.Energy)
		}
	}
}

// TestCustomMeasureDisablesGrouping pins the planner's scope: a farm with a
// caller-supplied MeasureFunc owns its whole pipeline, so batches run one
// job at a time and the sharing counters stay zero.
func TestCustomMeasureDisablesGrouping(t *testing.T) {
	var calls atomic.Int64
	f := New(Options{
		Workers: 2,
		Measure: func(ctx context.Context, job Job) (Result, error) {
			calls.Add(1)
			return Result{Cycles: pointValue(job.Point), Energy: 1, Instructions: 1}, nil
		},
	})
	defer f.Close()
	w := tinyWorkload()
	points := mixedBatch()
	if _, err := f.MeasureBatch(context.Background(), w, points, Cycles); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 10 {
		t.Errorf("measure calls = %d, want 10 unique points", got)
	}
	st := f.Stats()
	if st.BinaryGroups != 0 || st.TraceSharedSims != 0 || st.CompileCacheMisses != 0 {
		t.Errorf("sharing counters moved under a custom executor: %+v", st)
	}
}

// TestBatchStatsConsistentUnderLoad hammers the real batch pipeline while
// readers assert the sharing counters are never observed torn: trace-shared
// sims can't exceed total sims, groups can't exceed compile-cache traffic
// (each group performs exactly one cached compile), and completions can't
// outrun misses.
func TestBatchStatsConsistentUnderLoad(t *testing.T) {
	f := New(Options{Workers: 4})
	defer f.Close()
	w := tinyWorkload()

	stop := make(chan struct{})
	torn := make(chan string, 1)
	report := func(msg string) {
		select {
		case torn <- msg:
		default:
		}
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := f.Stats()
				if st.TraceSharedSims > st.SimsExecuted {
					report("torn snapshot: more shared sims than sims")
					return
				}
				if st.BinaryGroups > st.CompileCacheHits+st.CompileCacheMisses {
					report("torn snapshot: more groups than cached compiles")
					return
				}
				if st.SimsExecuted+st.Failures > st.CacheMisses {
					report("torn snapshot: more completions than misses")
					return
				}
			}
		}()
	}

	o2, o3 := compiler.O2(), compiler.O3()
	variants := []sim.Config{sim.DefaultConfig(), sim.Aggressive(), sim.Constrained()}
	for round := 0; round < 3; round++ {
		var points []doe.Point
		for i, cfg := range variants {
			cfg.MemLat = 50 + 5*((round+i)%21)
			points = append(points, jointPoint(o2, cfg), jointPoint(o3, cfg))
		}
		if _, err := f.MeasureBatch(context.Background(), w, points, Cycles); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	select {
	case msg := <-torn:
		t.Fatal(msg)
	default:
	}
	st := f.Stats()
	if st.BinaryGroups == 0 || st.TraceSharedSims == 0 {
		t.Fatalf("no shared groups executed: %+v", st)
	}
	// The Constrained points are singletons (no other task shares their
	// binary), so they run through the translated engine and its counters
	// must have moved; sampled-mode counters must not.
	if st.BlocksTranslated == 0 || st.TranslatedInstrs == 0 {
		t.Fatalf("singleton sims did not use the translated engine: %+v", st)
	}
	if st.SampledSims != 0 || st.WarmCkptHits != 0 || st.WarmCkptMisses != 0 {
		t.Fatalf("sampled counters moved in a detailed farm: %+v", st)
	}
}

// TestBinaryKeyCoversIssueWidth guards the subtle half of binary identity:
// the compiler's scheduler is parameterized by the target issue width taken
// from the microarchitecture block, so two points with identical flag
// subvectors but different issue widths must NOT share a binary.
func TestBinaryKeyCoversIssueWidth(t *testing.T) {
	w := tinyWorkload()
	o2 := compiler.O2()
	a := BinaryKey(w, jointPoint(o2, sim.DefaultConfig())) // width 4
	b := BinaryKey(w, jointPoint(o2, sim.Constrained()))   // width 2
	if a == b {
		t.Fatal("binary keys collide across issue widths")
	}
	c := BinaryKey(w, jointPoint(o2, func() sim.Config {
		cfg := sim.DefaultConfig()
		cfg.MemLat = 150 // timing-only knob: same binary
		return cfg
	}()))
	if a != c {
		t.Fatal("timing-only microarch change altered the binary key")
	}
	if !strings.Contains(a, w.Key()) {
		t.Fatalf("binary key %q does not embed the workload key", a)
	}
}
