package farm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Entry("a", 1.5), Entry("a|energy", 2.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint file must be the legacy flat-JSON cache format.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("checkpoint not legacy-format JSON: %v", err)
	}
	if m["a"] != 1.5 || m["a|energy"] != 2.5 {
		t.Fatalf("checkpoint contents: %v", m)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after checkpoint")
	}

	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("a"); !ok || v != 1.5 {
		t.Fatalf("reopened store: %v %v", v, ok)
	}
}

func TestStoreJournalSurvivesCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Entry("k1", 10), Entry("k2", 20)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Checkpoint, no Close. The checkpoint file does
	// not exist yet, but the journal must carry the results.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("checkpoint unexpectedly written")
	}
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("k1"); !ok || v != 10 {
		t.Fatalf("journal replay lost k1: %v %v", v, ok)
	}
	if v, ok := s2.Get("k2"); !ok || v != 20 {
		t.Fatalf("journal replay lost k2: %v %v", v, ok)
	}
}

func TestStoreRecoversFromCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	if err := os.WriteFile(path, []byte(`{"a": 1.0, "b":`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, nil)
	if err != nil {
		t.Fatalf("corrupt checkpoint must not fail Open: %v", err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("corrupt checkpoint partially loaded: %d entries", s.Len())
	}
	// The store must remain fully usable after recovery.
	if err := s.Put(Entry("fresh", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("fresh"); !ok || v != 3 {
		t.Fatalf("post-recovery checkpoint lost data: %v %v", v, ok)
	}
}

func TestStoreToleratesTruncatedJournalLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "measurements-test.json")
	journal := `{"k":"good","v":42}` + "\n" + `{"k":"torn","v":4` // crash mid-write
	if err := os.WriteFile(path+".journal", []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if v, ok := s.Get("good"); !ok || v != 42 {
		t.Fatalf("intact journal line lost: %v %v", v, ok)
	}
	if _, ok := s.Get("torn"); ok {
		t.Fatal("torn journal line must not be replayed")
	}
}

func TestStoreCheckpointTruncatesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(Entry("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path + ".journal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("journal not truncated after checkpoint: %d bytes", info.Size())
	}
	// Appends after a checkpoint land at the start of the journal again.
	if err := s.Put(Entry("y", 2)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("y"); !ok || v != 2 {
		t.Fatalf("post-checkpoint journal entry lost: %v %v", v, ok)
	}
}

func TestMemStoreNoFiles(t *testing.T) {
	s := MemStore()
	if err := s.Put(Entry("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("mem store lost value: %v %v", v, ok)
	}
}

// TestCheckpointCrashBeforeRenameRecovers simulates a crash in the
// vulnerable window of Checkpoint — after the temp file is written but
// before the atomic rename — and asserts nothing is lost: the journal still
// holds every measurement (it is only truncated after the rename lands), the
// stale temp file is ignored on reopen, and a subsequent Checkpoint repairs
// the on-disk state.
func TestCheckpointCrashBeforeRenameRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Entry("a", 1), Entry("b", 2)); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: hand-write the temp file Checkpoint would have
	// produced (even a complete one — the crash means the rename never
	// happened) and abandon the store without Checkpoint or Close.
	if err := os.WriteFile(path+".tmp", []byte(`{"a":1`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get("a"); !ok || v != 1 {
		t.Fatalf("journal replay lost a: %v %v", v, ok)
	}
	if v, ok := s2.Get("b"); !ok || v != 2 {
		t.Fatalf("journal replay lost b: %v %v", v, ok)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The repaired checkpoint alone (journal now truncated) carries both.
	s3, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Fatalf("repaired store has %d entries, want 2", s3.Len())
	}
}
