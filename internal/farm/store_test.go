package farm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Entry("a", 1.5), Entry("a|energy", 2.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint file must be the legacy flat-JSON cache format.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("checkpoint not legacy-format JSON: %v", err)
	}
	if m["a"] != 1.5 || m["a|energy"] != 2.5 {
		t.Fatalf("checkpoint contents: %v", m)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after checkpoint")
	}

	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("a"); !ok || v != 1.5 {
		t.Fatalf("reopened store: %v %v", v, ok)
	}
}

func TestStoreJournalSurvivesCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Entry("k1", 10), Entry("k2", 20)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Checkpoint, no Close. The checkpoint file does
	// not exist yet, but the journal must carry the results.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("checkpoint unexpectedly written")
	}
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("k1"); !ok || v != 10 {
		t.Fatalf("journal replay lost k1: %v %v", v, ok)
	}
	if v, ok := s2.Get("k2"); !ok || v != 20 {
		t.Fatalf("journal replay lost k2: %v %v", v, ok)
	}
}

func TestStoreRecoversFromCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	if err := os.WriteFile(path, []byte(`{"a": 1.0, "b":`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, nil)
	if err != nil {
		t.Fatalf("corrupt checkpoint must not fail Open: %v", err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("corrupt checkpoint partially loaded: %d entries", s.Len())
	}
	// The store must remain fully usable after recovery.
	if err := s.Put(Entry("fresh", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("fresh"); !ok || v != 3 {
		t.Fatalf("post-recovery checkpoint lost data: %v %v", v, ok)
	}
}

func TestStoreToleratesTruncatedJournalLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "measurements-test.json")
	journal := `{"k":"good","v":42}` + "\n" + `{"k":"torn","v":4` // crash mid-write
	if err := os.WriteFile(path+".journal", []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if v, ok := s.Get("good"); !ok || v != 42 {
		t.Fatalf("intact journal line lost: %v %v", v, ok)
	}
	if _, ok := s.Get("torn"); ok {
		t.Fatal("torn journal line must not be replayed")
	}
}

func TestStoreCheckpointTruncatesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(Entry("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path + ".journal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("journal not truncated after checkpoint: %d bytes", info.Size())
	}
	// Appends after a checkpoint land at the start of the journal again.
	if err := s.Put(Entry("y", 2)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("y"); !ok || v != 2 {
		t.Fatalf("post-checkpoint journal entry lost: %v %v", v, ok)
	}
}

func TestMemStoreNoFiles(t *testing.T) {
	s := MemStore()
	if err := s.Put(Entry("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("mem store lost value: %v %v", v, ok)
	}
}

// TestCheckpointCrashBeforeRenameRecovers simulates a crash in the
// vulnerable window of Checkpoint — after the temp file is written but
// before the atomic rename — and asserts nothing is lost: the journal still
// holds every measurement (it is only truncated after the rename lands), the
// stale temp file is ignored on reopen, and a subsequent Checkpoint repairs
// the on-disk state.
func TestCheckpointCrashBeforeRenameRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements-test.json")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Entry("a", 1), Entry("b", 2)); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: hand-write the temp file Checkpoint would have
	// produced (even a complete one — the crash means the rename never
	// happened) and abandon the store without Checkpoint or Close.
	if err := os.WriteFile(path+".tmp", []byte(`{"a":1`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get("a"); !ok || v != 1 {
		t.Fatalf("journal replay lost a: %v %v", v, ok)
	}
	if v, ok := s2.Get("b"); !ok || v != 2 {
		t.Fatalf("journal replay lost b: %v %v", v, ok)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The repaired checkpoint alone (journal now truncated) carries both.
	s3, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Fatalf("repaired store has %d entries, want 2", s3.Len())
	}
}

func TestStoreSinceCursor(t *testing.T) {
	s := MemStore()
	if err := s.Put(Entry("a", 1), Entry("b", 2)); err != nil {
		t.Fatal(err)
	}
	all, next := s.Since(0)
	if len(all) != 2 || next != 2 {
		t.Fatalf("Since(0) = %v, next %d; want 2 entries, next 2", all, next)
	}
	if err := s.Put(Entry("c", 3)); err != nil {
		t.Fatal(err)
	}
	delta, next2 := s.Since(next)
	if len(delta) != 1 || delta[0].K != "c" || delta[0].V != 3 || next2 != 3 {
		t.Fatalf("Since(%d) = %v, next %d; want just c, next 3", next, delta, next2)
	}
	if empty, _ := s.Since(next2); len(empty) != 0 {
		t.Fatalf("Since at head returned %v", empty)
	}
	// Out-of-range cursors (negative, or from another store lifetime with a
	// longer order) fall back to a full resend — safe because Merge skips
	// entries the receiver already holds.
	for _, cur := range []int{-1, next2 + 10} {
		if got, _ := s.Since(cur); len(got) != 3 {
			t.Fatalf("Since(%d) = %d entries, want full resend of 3", cur, len(got))
		}
	}
}

func TestStoreMergeIdempotentAndLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "merged.json")
	dst, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	delta := []KV{{K: "a", V: 1}, {K: "b", V: 2}}

	added, conflicts, err := dst.Merge(delta)
	if err != nil || added != 2 || conflicts != 0 {
		t.Fatalf("first merge: added=%d conflicts=%d err=%v", added, conflicts, err)
	}
	journalLen := func() int64 {
		fi, err := os.Stat(path + ".journal")
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	before := journalLen()

	// Replaying the identical delta is a no-op in memory and on disk.
	added, conflicts, err = dst.Merge(delta)
	if err != nil || added != 0 || conflicts != 0 {
		t.Fatalf("replayed merge: added=%d conflicts=%d err=%v", added, conflicts, err)
	}
	if after := journalLen(); after != before {
		t.Fatalf("idempotent merge grew the journal: %d -> %d bytes", before, after)
	}

	// A disagreeing entry overwrites (last write wins) and counts as a
	// conflict; the overwrite is journaled.
	added, conflicts, err = dst.Merge([]KV{{K: "a", V: 9}})
	if err != nil || added != 0 || conflicts != 1 {
		t.Fatalf("conflicting merge: added=%d conflicts=%d err=%v", added, conflicts, err)
	}
	if v, _ := dst.Get("a"); v != 9 {
		t.Fatalf("conflict did not overwrite: a = %v", v)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}

	// Merged state survives reopen like any Put.
	re, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, _ := re.Get("a"); v != 9 {
		t.Fatalf("reopened merged store: a = %v, want 9", v)
	}
	if v, _ := re.Get("b"); v != 2 {
		t.Fatalf("reopened merged store: b = %v, want 2", v)
	}
}

func TestStoreSinceMergeShipsWholeStore(t *testing.T) {
	// The worker-side flow: a store reopened from checkpoint+journal ships
	// its entire contents from cursor 0, and a fresh receiver reconstructs it
	// exactly.
	dir := t.TempDir()
	src, err := Open(filepath.Join(dir, "worker.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Put(Entry("a", 1), Entry("b", 2)); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	src, err = Open(filepath.Join(dir, "worker.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	delta, _ := src.Since(0)
	dst := MemStore()
	if added, conflicts, err := dst.Merge(delta); err != nil || added != 2 || conflicts != 0 {
		t.Fatalf("merge of reopened store: added=%d conflicts=%d err=%v", added, conflicts, err)
	}
	want := src.Snapshot()
	got := dst.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: merged %v, want %v", k, got[k], v)
		}
	}
}
