package farm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store is the farm's durable measurement store. The on-disk layout is a
// checkpoint file in the pre-farm cache format — a flat JSON object mapping
// measurement key to value, so existing `.empirico-cache/measurements-*.json`
// files load unchanged — plus a sibling append-only journal
// (`<checkpoint>.journal`, one JSON object per line) that records results the
// moment they finish. A crash between checkpoints loses nothing: Open replays
// the journal over the checkpoint. Checkpoint folds the journal into the
// checkpoint file via temp-file + atomic rename and then truncates the
// journal, so a crash during checkpointing is also safe.
type Store struct {
	mu      sync.Mutex
	path    string // checkpoint path; "" means memory-only
	journal *os.File
	m       map[string]float64
	order   []string // keys in arrival order, the Since cursor space
	pending int      // journal entries not yet folded into the checkpoint
	log     io.Writer
}

// KV is one stored measurement on the wire and in the journal: the
// measurement key and its value. It is the unit of Put, Since and Merge, so
// the distributed plane can ship store deltas between processes in exactly
// the representation the journal persists.
type KV struct {
	K string  `json:"k"`
	V float64 `json:"v"`
}

// MemStore returns a store with no backing files — the configuration used
// when the harness has no cache directory.
func MemStore() *Store {
	return &Store{m: map[string]float64{}}
}

// Open loads (or creates) a durable store at path. A corrupt or truncated
// checkpoint is logged and discarded — the store starts fresh rather than
// silently serving a partial cache — and journal replay tolerates a
// truncated final line from a crashed writer. Progress messages go to
// logTo when non-nil.
func Open(path string, logTo io.Writer) (*Store, error) {
	s := &Store{path: path, m: map[string]float64{}, log: logTo}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &s.m); err != nil {
			s.logf("farm: cache %s is corrupt (%v); starting fresh", path, err)
			s.m = map[string]float64{}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	// Loaded entries enter the Since cursor space too, so a reopened store
	// can ship its whole contents as one delta from cursor 0. Map iteration
	// order is arbitrary, which is why cursors are only meaningful within one
	// store lifetime (Boot below).
	for k := range s.m {
		s.order = append(s.order, k)
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	j, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.journal = j
	return s, nil
}

func (s *Store) journalPath() string { return s.path + ".journal" }

func (s *Store) logf(format string, args ...interface{}) {
	if s.log != nil {
		fmt.Fprintf(s.log, format+"\n", args...)
	}
}

func (s *Store) replayJournal() error {
	f, err := os.Open(s.journalPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	replayed, bad := 0, 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e KV
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn final write from a crash; anything after it is
			// untrustworthy, so stop here rather than resync.
			bad++
			break
		}
		s.m[e.K] = e.V
		s.order = append(s.order, e.K)
		replayed++
	}
	s.pending = replayed
	if replayed > 0 || bad > 0 {
		s.logf("farm: journal replay: %d entries recovered, %d corrupt lines dropped", replayed, bad)
	}
	return sc.Err()
}

// Get returns the stored value for key.
func (s *Store) Get(key string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Get2 looks up two keys under one lock acquisition (the farm stores a
// cycles and an energy entry per simulation and needs both for a hit).
func (s *Store) Get2(k1, k2 string) (float64, float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v1, ok1 := s.m[k1]
	v2, ok2 := s.m[k2]
	return v1, v2, ok1 && ok2
}

// Put records the key/value pairs in memory and appends them to the journal
// so they survive a crash before the next checkpoint. Pairs alternate
// key, value semantics via the kv slice of entries.
func (s *Store) Put(entries ...KV) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(entries)
}

func (s *Store) putLocked(entries []KV) error {
	for _, e := range entries {
		s.m[e.K] = e.V
		s.order = append(s.order, e.K)
	}
	if s.journal == nil {
		return nil
	}
	var buf []byte
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	// One write per batch keeps lines whole on disk barring a torn page;
	// replay handles the torn case anyway.
	if _, err := s.journal.Write(buf); err != nil {
		return err
	}
	s.pending += len(entries)
	return nil
}

// Since returns the entries recorded after cursor (a value previously
// returned as next, or 0 for everything) along with the new cursor. Cursors
// are positions in this store's arrival order and are only meaningful within
// one store lifetime — callers pairing Since with a remote store must reset
// to 0 when the remote's boot identity changes. Values are read at call
// time, so an entry overwritten since it was recorded ships its latest
// value (merge is last-write-wins anyway).
func (s *Store) Since(cursor int) (entries []KV, next int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(s.order) {
		cursor = 0 // stale cursor from another lifetime: resend everything
	}
	for _, k := range s.order[cursor:] {
		entries = append(entries, KV{K: k, V: s.m[k]})
	}
	return entries, len(s.order)
}

// Merge folds a delta from another store into this one, last-write-wins:
// an entry whose key is absent is added, an entry equal to the stored value
// is skipped (so replaying the same delta is a no-op that journals
// nothing), and an entry that disagrees overwrites and is counted as a
// conflict. Only changed entries touch the journal, which is what makes
// merge idempotent on disk as well as in memory.
func (s *Store) Merge(entries []KV) (added, conflicts int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := make([]KV, 0, len(entries))
	for _, e := range entries {
		old, ok := s.m[e.K]
		switch {
		case !ok:
			added++
		case old == e.V:
			continue
		default:
			conflicts++
		}
		changed = append(changed, e)
	}
	if len(changed) == 0 {
		return 0, 0, nil
	}
	return added, conflicts, s.putLocked(changed)
}

// Entry builds a journal entry; exported so callers can batch Put calls.
func Entry(key string, v float64) KV { return KV{K: key, V: v} }

// Len reports the number of stored measurements.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Snapshot returns a copy of the store contents (for tests and reporting).
func (s *Store) Snapshot() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// Checkpoint folds the journal into the checkpoint file: the full map is
// written to a temp file, synced, atomically renamed over the checkpoint,
// and only then is the journal truncated. Readers of the old cache format
// see either the previous checkpoint or the new one, never a partial write.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		return nil
	}
	if s.pending == 0 {
		// Nothing new since the last checkpoint (or load); skip the write
		// but still make sure a checkpoint file exists for fresh stores.
		if _, err := os.Stat(s.path); err == nil {
			return nil
		}
	}
	data, err := json.Marshal(s.m)
	if err != nil {
		return err
	}
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The temp file's contents are synced above, but the rename itself is
	// only durable once the directory entry reaches disk; without this a
	// crash right after Rename can resurrect the old checkpoint — after the
	// journal below has already been truncated, losing the delta.
	if err := syncDir(filepath.Dir(s.path)); err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journal.Truncate(0); err != nil {
			return err
		}
		if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	s.pending = 0
	return nil
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close checkpoints (when durable) and releases the journal handle.
func (s *Store) Close() error {
	err := s.Checkpoint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		if cerr := s.journal.Close(); err == nil {
			err = cerr
		}
		s.journal = nil
	}
	return err
}
