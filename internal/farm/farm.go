// Package farm is the measurement-execution engine of the reproduction: it
// accepts (workload, design-point) jobs and runs the compile+simulate
// pipeline for them on a bounded worker pool. Three properties make it the
// single path every measurement takes:
//
//   - single-flight deduplication: two callers asking for the same point
//     trigger one execution, with the second caller waiting on the first's
//     result (the pre-farm harness dropped its lock during simulation and
//     silently duplicated concurrent work);
//   - a durable result store (Store): completed measurements are journaled
//     as they finish and checkpointed via temp-file + atomic rename, staying
//     read-compatible with the original measurements-*.json cache format;
//   - bounded retry with error classification and context cancellation:
//     compile errors fail fast, budget overruns are reported, transient
//     store IO retries, and a cancelled context drains workers cleanly.
//
// Results are keyed by point and order-independent, so a parallel run is
// bit-for-bit identical to a serial one (DESIGN.md decision 7).
package farm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/doe"
	"repro/internal/smarts"
	"repro/internal/workloads"
)

// Options configures a Farm.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Store holds completed measurements; nil means a fresh MemStore.
	Store *Store
	// Measure executes jobs; nil means Executor(MaxInstrs).
	Measure MeasureFunc
	// MaxInstrs is the per-simulation instruction budget for the default
	// executor (0 = 500M).
	MaxInstrs int64
	// MaxRetries bounds retries of transient failures per job (0 = 3,
	// negative = no retries).
	MaxRetries int
	// RetryDelay is the base backoff between transient retries, growing
	// linearly with the attempt (0 = 10ms).
	RetryDelay time.Duration
	// BinaryCacheSize bounds the compiled-binary cache used by the default
	// executor and the batch planner (0 = 256 binaries).
	BinaryCacheSize int
	// MaxConsumers caps the timing consumers sharing one functional
	// interpretation in a batch group (0 = sim's default of 16).
	MaxConsumers int
	// Sampler, when non-nil, switches the default executor from detailed
	// simulation to SMARTS sampled measurement backed by warm-state
	// checkpoints: repeat measurements of one binary under configurations
	// sharing a warm geometry replay only the detailed regions. Sampled
	// results are estimates, so the farm's result store must not be shared
	// with a detailed farm. Shared-trace grouping is disabled in this mode —
	// the checkpoint store plays the same role across batches, not just
	// within one.
	Sampler *smarts.Sampler
	// CheckpointCap bounds the warm-checkpoint store in sets
	// (0 = smarts.DefaultStoreCap). Only used when Sampler is set.
	CheckpointCap int
	// Log receives progress and recovery lines; nil silences them.
	Log io.Writer
}

// Farm is a concurrent measurement farm. Create with New, submit with
// Measure or MeasureBatch, and Close when done to flush the store.
type Farm struct {
	opts    Options
	workers int
	retries int
	delay   time.Duration
	measure MeasureFunc
	store   *Store

	// Batch machinery: binary cache, compile hook (swappable in tests) and
	// the grouping switch, enabled only with the default executor — a custom
	// Measure owns the whole pipeline, so the planner can't split it.
	bins         *binaryCache
	compile      compileFn
	grouping     bool
	maxInstrs    int64
	maxConsumers int

	// Sampled-measurement plane: non-nil sampler selects SMARTS estimates
	// served through the warm-checkpoint store instead of detailed runs.
	sampler *smarts.Sampler
	ckpts   *smarts.Store

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*task
	inflight map[string]*task
	closed   bool
	wg       sync.WaitGroup

	start time.Time
	// statMu guards every instrumentation counter. A single mutex (rather
	// than per-counter atomics) lets Stats take one consistent snapshot:
	// counters that move together (sims and instrs, misses and queue
	// growth) can never be observed torn mid-update.
	statMu sync.Mutex
	st     counters
}

// counters is the farm's instrumentation state; all fields are guarded by
// Farm.statMu and updated in one critical section per logical event.
type counters struct {
	hits, misses, coalesced        int64
	sims, instrs                   int64
	retried, budgetOverruns, fails int64
	compileHits, compileMisses     int64
	traceShared, groups            int64
	dispatched, hedged, requeued   int64
	// Translated-engine counters (detailed mode, ungrouped sims).
	blocksTranslated, translatedInstrs, slowPathEntries int64
	// Sampled-mode counters: every sampled sim is either a checkpoint
	// replay (hit) or a full build run (miss), so hits+misses == sampled.
	sampledSims, ckptHits, ckptMisses int64
	workerBusyNanos                   []int64
	workerJobs                        []int64
}

// task is one in-flight execution; all callers for the same key share it.
type task struct {
	job Job
	key string
	// ctx is the first submitter's context: cancellation of the original
	// caller cancels the shared execution (later joiners still bail on
	// their own contexts while waiting).
	ctx  context.Context
	done chan struct{}
	res  Result
	err  error
	// group, when non-nil, marks this task as the leader of a shared-binary
	// batch group; the worker executes the whole group in one pass.
	group *group
}

// errFarmClosed rejects work submitted after Close.
var errFarmClosed = errors.New("farm: closed")

// New starts a farm with opts.Workers workers. The pool runs until Close.
func New(opts Options) *Farm {
	f := &Farm{
		opts:     opts,
		workers:  opts.Workers,
		retries:  opts.MaxRetries,
		delay:    opts.RetryDelay,
		measure:  opts.Measure,
		store:    opts.Store,
		inflight: map[string]*task{},
		start:    time.Now(),
	}
	if f.workers <= 0 {
		f.workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case f.retries == 0:
		f.retries = 3
	case f.retries < 0:
		f.retries = 0
	}
	if f.delay == 0 {
		f.delay = 10 * time.Millisecond
	}
	f.maxInstrs = opts.MaxInstrs
	if f.maxInstrs == 0 {
		f.maxInstrs = 500_000_000
	}
	f.maxConsumers = opts.MaxConsumers
	cacheSize := opts.BinaryCacheSize
	if cacheSize <= 0 {
		cacheSize = 256
	}
	f.bins = newBinaryCache(cacheSize)
	f.compile = defaultCompile
	f.sampler = opts.Sampler
	if f.sampler != nil {
		f.ckpts = smarts.NewStore(opts.CheckpointCap)
	}
	if f.measure == nil {
		f.measure = f.cachedExecutor
		// Shared-trace grouping and checkpointed sampling are alternative
		// amortization schemes for the same redundancy (one binary, many
		// configurations); in sampled mode the checkpoint store wins because
		// it also spans batches and retries.
		f.grouping = f.sampler == nil
	}
	if f.store == nil {
		f.store = MemStore()
	}
	f.cond = sync.NewCond(&f.mu)
	f.st.workerBusyNanos = make([]int64, f.workers)
	f.st.workerJobs = make([]int64, f.workers)
	f.wg.Add(f.workers)
	for i := 0; i < f.workers; i++ {
		go f.worker(i)
	}
	return f
}

// bump applies one counter update atomically with respect to Stats.
func (f *Farm) bump(update func(*counters)) {
	f.statMu.Lock()
	update(&f.st)
	f.statMu.Unlock()
}

func (f *Farm) logf(format string, args ...interface{}) {
	if f.opts.Log != nil {
		fmt.Fprintf(f.opts.Log, format+"\n", args...)
	}
}

// Store exposes the farm's result store (for checkpointing and inspection).
func (f *Farm) Store() *Store { return f.store }

// Measure returns the requested response of workload w at point p, executing
// the compile+simulate pipeline at most once per distinct point regardless
// of how many goroutines ask. It blocks until the result is available or ctx
// is cancelled.
func (f *Farm) Measure(ctx context.Context, w workloads.Workload, p doe.Point, resp Response) (float64, error) {
	res, err := f.Do(ctx, Job{Workload: w, Point: p})
	if err != nil {
		return 0, err
	}
	return resp.Value(res), nil
}

// Do runs one job through the cache, single-flight and worker-pool layers
// and returns its full result.
func (f *Farm) Do(ctx context.Context, job Job) (Result, error) {
	key := Key(job.Workload, job.Point)
	if c, e, ok := f.store.Get2(key, EnergyKey(key)); ok {
		f.bump(func(s *counters) { s.hits++ })
		return Result{Cycles: c, Energy: e}, nil
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return Result{}, errFarmClosed
	}
	t, shared := f.inflight[key]
	if shared {
		f.bump(func(s *counters) { s.coalesced++ })
	} else {
		t = &task{job: job, key: key, ctx: ctx, done: make(chan struct{})}
		f.inflight[key] = t
		f.queue = append(f.queue, t)
		f.bump(func(s *counters) { s.misses++ })
		f.cond.Signal()
	}
	f.mu.Unlock()
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// MeasureBatch measures w at every point, saturating the worker pool, and
// returns the responses in input order. The batch goes through DoJobs, so
// points sharing a binary are planned into shared-trace groups. On failure
// it returns the error of the earliest failing point (by input index),
// matching the serial path's error selection so parallel and serial runs
// are indistinguishable.
func (f *Farm) MeasureBatch(ctx context.Context, w workloads.Workload, points []doe.Point, resp Response) ([]float64, error) {
	jobs := make([]Job, len(points))
	for i, p := range points {
		jobs[i] = Job{Workload: w, Point: p}
	}
	res, errs := f.DoJobs(ctx, jobs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(points))
	for i := range res {
		out[i] = resp.Value(res[i])
	}
	return out, nil
}

func (f *Farm) worker(id int) {
	defer f.wg.Done()
	for {
		f.mu.Lock()
		for len(f.queue) == 0 && !f.closed {
			f.cond.Wait()
		}
		if len(f.queue) == 0 {
			// Closed with an empty queue: the pool has drained.
			f.mu.Unlock()
			return
		}
		t := f.queue[0]
		f.queue = f.queue[1:]
		f.mu.Unlock()
		start := time.Now()
		f.run(t)
		busy := time.Since(start).Nanoseconds()
		f.bump(func(s *counters) {
			s.workerBusyNanos[id] += busy
			s.workerJobs[id]++
		})
	}
}

// run executes one task with the retry policy and publishes the result.
// Group leaders execute the whole shared-binary group instead.
func (f *Farm) run(t *task) {
	if t.group != nil {
		f.runGroup(t)
		return
	}
	res, err := f.attempt(t)
	if err == nil {
		// One critical section for the pair: a Stats snapshot always sees
		// sims and instrs move together.
		f.bump(func(s *counters) {
			s.sims++
			s.instrs += res.Instructions
		})
		if perr := f.persist(t.key, res); perr != nil {
			// The measurement itself is valid; a store that stays broken
			// past its retries costs durability, not correctness.
			f.logf("farm: store append for %s failed: %v", t.key, perr)
		}
	} else {
		budget := Classify(err) == ClassBudget
		f.bump(func(s *counters) {
			s.fails++
			if budget {
				s.budgetOverruns++
			}
		})
		switch Classify(err) {
		case ClassBudget:
			f.logf("farm: %s: %v", t.job.Workload.Key(), err)
		case ClassPermanent:
			f.logf("farm: %s: permanent failure: %v", t.job.Workload.Key(), err)
		}
	}
	f.mu.Lock()
	delete(f.inflight, t.key)
	f.mu.Unlock()
	t.res, t.err = res, err
	close(t.done)
}

// attempt runs the measurement, retrying transient failures with linear
// backoff up to the retry budget, and honouring cancellation between tries.
func (f *Farm) attempt(t *task) (Result, error) {
	var res Result
	var err error
	for try := 0; ; try++ {
		if cerr := t.ctx.Err(); cerr != nil {
			return Result{}, cerr
		}
		res, err = f.measure(t.ctx, t.job)
		if err == nil || Classify(err) != ClassTransient || try >= f.retries {
			return res, err
		}
		f.bump(func(s *counters) { s.retried++ })
		f.logf("farm: %s: transient failure (attempt %d/%d): %v",
			t.job.Workload.Key(), try+1, f.retries, err)
		select {
		case <-t.ctx.Done():
			return Result{}, t.ctx.Err()
		case <-time.After(f.delay * time.Duration(try+1)):
		}
	}
}

// persist journals both responses of a result, retrying transient IO.
func (f *Farm) persist(key string, res Result) error {
	var err error
	for try := 0; try <= f.retries; try++ {
		err = f.store.Put(Entry(key, res.Cycles), Entry(EnergyKey(key), res.Energy))
		if err == nil || Classify(err) != ClassTransient {
			return err
		}
		f.bump(func(s *counters) { s.retried++ })
		time.Sleep(f.delay * time.Duration(try+1))
	}
	return err
}

// Checkpoint flushes the result store to its durable checkpoint file.
func (f *Farm) Checkpoint() error { return f.store.Checkpoint() }

// Close drains the queue, stops the workers and closes the store (flushing
// a final checkpoint when durable). The farm rejects new work afterwards.
func (f *Farm) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	f.wg.Wait()
	return f.store.Close()
}

// WorkerStats reports one worker's share of the farm's work. For the
// in-process farm a worker is one pool goroutine (Slots is always 1 and the
// remote-plane fields stay zero); for the distributed coordinator a worker
// is one empirico-worker process with an address, an advertised slot budget
// and a worker-local result store.
type WorkerStats struct {
	Jobs int64
	Busy time.Duration
	// Addr identifies a remote worker process ("" for in-process workers).
	Addr string
	// Slots is the worker's lease capacity (its advertised -workers count on
	// the distributed plane; 1 for an in-process pool goroutine).
	Slots int64
	// InFlight is the leases currently held by this worker.
	InFlight int64
	// Groups counts shared-binary groups this worker completed.
	Groups int64
	// LocalHits counts points this worker answered from its own journaled
	// store without simulating.
	LocalHits int64
	// Removed marks a worker that deregistered (it takes no new leases but
	// stays in the stats so its totals remain visible).
	Removed bool
}

// Stats is a snapshot of the farm's instrumentation counters.
type Stats struct {
	Workers         int
	CacheHits       int64 // requests served from the result store
	CacheMisses     int64 // requests that became executions
	Coalesced       int64 // requests that joined an in-flight execution
	SimsExecuted    int64
	InstrsSimulated int64
	Retries         int64
	BudgetOverruns  int64
	Failures        int64
	// Batch-sharing counters: binary-cache traffic, simulations served by
	// the shared-trace path, and shared-binary groups executed.
	CompileCacheHits   int64
	CompileCacheMisses int64
	TraceSharedSims    int64
	BinaryGroups       int64
	// Dispatch-plane counters. GroupsDispatched counts every lease of a
	// shared-binary group to an executor (locally: one per group run;
	// distributed: one per worker lease, so hedges and requeue re-leases
	// count again). GroupsHedged counts straggler re-dispatches,
	// GroupsRequeued counts leases abandoned after worker death or drain,
	// and WorkersLive is the executors currently believed healthy (for the
	// in-process farm that is simply the pool size).
	GroupsDispatched int64
	GroupsHedged     int64
	GroupsRequeued   int64
	WorkersLive      int64
	// Elastic-plane counters. WorkerLocalHits totals the points remote
	// workers answered from their own journaled stores (zero in-process);
	// StoreMerges counts worker-delta pulls merged into the coordinator's
	// store and StoreMergeConflicts the last-write-wins overwrites those
	// merges performed (identical values are idempotent, not conflicts).
	WorkerLocalHits     int64
	StoreMerges         int64
	StoreMergeConflicts int64
	// Engine-tier counters. The translated-engine trio moves only for
	// ungrouped detailed sims (grouped sims ride the shared-trace path);
	// the checkpoint trio moves only in sampled mode, where
	// WarmCkptHits+WarmCkptMisses == SampledSims holds in every snapshot.
	BlocksTranslated int64 // static blocks translated across executed sims
	TranslatedInstrs int64 // dynamic instructions retired via translated blocks
	SlowPathEntries  int64 // translated-engine falls back to the fused loop
	SampledSims      int64 // sims measured by SMARTS sampling
	WarmCkptHits     int64 // sampled sims served by warm-checkpoint replay
	WarmCkptMisses   int64 // sampled sims that built a checkpoint set
	WallTime         time.Duration
	PerWorker        []WorkerStats
}

// Utilization is the mean fraction of wall time the workers spent executing
// jobs (1.0 = every worker busy the whole time).
func (s Stats) Utilization() float64 {
	if s.WallTime <= 0 || s.Workers == 0 {
		return 0
	}
	var busy time.Duration
	for _, w := range s.PerWorker {
		busy += w.Busy
	}
	return float64(busy) / (float64(s.WallTime) * float64(s.Workers))
}

// String renders the one-line summary the harness log prints.
func (s Stats) String() string {
	return fmt.Sprintf(
		"farm: %d workers, %d sims (%d Minstrs), %d cache hits, %d coalesced, %d retries, %d failures, %.0f%% utilization, %s wall",
		s.Workers, s.SimsExecuted, s.InstrsSimulated/1_000_000,
		s.CacheHits, s.Coalesced, s.Retries, s.Failures,
		100*s.Utilization(), s.WallTime.Round(time.Millisecond))
}

// Stats snapshots the farm's counters. The whole snapshot is taken under a
// single acquisition of the stats lock, so counters that are updated
// together are seen together: InstrsSimulated always corresponds to exactly
// SimsExecuted completed simulations, never a torn in-between state.
func (f *Farm) Stats() Stats {
	f.statMu.Lock()
	st := Stats{
		Workers:         f.workers,
		CacheHits:       f.st.hits,
		CacheMisses:     f.st.misses,
		Coalesced:       f.st.coalesced,
		SimsExecuted:    f.st.sims,
		InstrsSimulated: f.st.instrs,
		Retries:         f.st.retried,
		BudgetOverruns:  f.st.budgetOverruns,
		Failures:        f.st.fails,

		CompileCacheHits:   f.st.compileHits,
		CompileCacheMisses: f.st.compileMisses,
		TraceSharedSims:    f.st.traceShared,
		BinaryGroups:       f.st.groups,

		GroupsDispatched: f.st.dispatched,
		GroupsHedged:     f.st.hedged,
		GroupsRequeued:   f.st.requeued,
		WorkersLive:      int64(f.workers),

		BlocksTranslated: f.st.blocksTranslated,
		TranslatedInstrs: f.st.translatedInstrs,
		SlowPathEntries:  f.st.slowPathEntries,
		SampledSims:      f.st.sampledSims,
		WarmCkptHits:     f.st.ckptHits,
		WarmCkptMisses:   f.st.ckptMisses,
	}
	st.PerWorker = make([]WorkerStats, f.workers)
	for i := range st.PerWorker {
		st.PerWorker[i] = WorkerStats{
			Jobs:  f.st.workerJobs[i],
			Busy:  time.Duration(f.st.workerBusyNanos[i]),
			Slots: 1,
		}
	}
	f.statMu.Unlock()
	st.WallTime = time.Since(f.start)
	return st
}
