// empirico-worker is one shard of the distributed measurement plane: a
// stateless daemon that wraps a local measurement farm behind the
// group-lease API, measuring whatever shared-binary groups a coordinator
// (empiricod or empirico with -workers-addrs) leases to it.
//
// Usage:
//
//	empirico-worker -addr 127.0.0.1:9101 -workers 4
//
// Endpoints:
//
//	POST /v1/group   measure one shared-binary group, results streamed as
//	                 ndjson (heartbeats while measuring, then one result
//	                 line per point and a done line)
//	GET  /healthz    liveness + local farm counters
//
// Workers hold no durable state — the coordinator owns the result store —
// so killing a worker at any moment loses nothing: its in-flight leases
// expire on the coordinator and requeue elsewhere.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
)

func main() {
	var (
		addr      = flag.String("addr", ":9101", "listen address")
		workers   = flag.Int("workers", 0, "local farm workers (0 = GOMAXPROCS)")
		maxInstrs = flag.Int64("max-instrs", 0, "per-simulation instruction budget (0 = 500M; must match the coordinator's)")
		heartbeat = flag.Duration("heartbeat", 0, "interval between heartbeat lines while measuring (0 = 500ms)")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	opts := dist.WorkerOptions{
		Workers:   *workers,
		MaxInstrs: *maxInstrs,
		Heartbeat: *heartbeat,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	w := dist.NewWorker(opts)
	hs := &http.Server{Addr: *addr, Handler: w.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "empirico-worker: listening on %s\n", *addr)
		}
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	if !*quiet {
		fmt.Fprintln(os.Stderr, "empirico-worker: shutting down")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "empirico-worker: drain:", err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "empirico-worker:", err)
	os.Exit(1)
}
