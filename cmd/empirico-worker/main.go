// empirico-worker is one shard of the distributed measurement plane: a
// daemon that wraps a local measurement farm behind the group-lease API,
// measuring whatever shared-binary groups a coordinator (empiricod or
// empirico with -workers-addrs) leases to it.
//
// Usage:
//
//	empirico-worker -addr 127.0.0.1:9101 -workers 4 \
//	    -store .empirico-cache/worker-9101.json \
//	    -coordinator http://127.0.0.1:9100 -advertise 127.0.0.1:9101
//
// Endpoints:
//
//	POST /v1/group   measure one shared-binary group, results streamed as
//	                 ndjson (heartbeats while measuring, then one result
//	                 line per point and a done line)
//	GET  /v1/store   the worker's journaled store delta since a cursor
//	GET  /healthz    liveness + local farm counters
//
// With -store the worker keeps its own journaled partition of the
// measurement store: repeat leases are answered from local cache with zero
// simulations, and the coordinator pulls the delta on its checkpoints.
// Without it the worker is stateless and killing it at any moment loses
// nothing: in-flight leases expire on the coordinator and requeue elsewhere.
//
// With -coordinator the worker registers itself on boot (advertising its
// -workers slot count for capacity-weighted placement) and deregisters on
// SIGTERM, so fleets grow and shrink without restarting the coordinator.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/farm"
)

func main() {
	var (
		addr        = flag.String("addr", ":9101", "listen address")
		workers     = flag.Int("workers", 0, "local farm workers (0 = GOMAXPROCS)")
		maxInstrs   = flag.Int64("max-instrs", 0, "per-simulation instruction budget (0 = 500M; must match the coordinator's)")
		heartbeat   = flag.Duration("heartbeat", 0, "interval between heartbeat lines while measuring (0 = 500ms)")
		storePath   = flag.String("store", "", "journaled worker-local store path (empty = in-memory only)")
		coordinator = flag.String("coordinator", "", "coordinator control URL to register with (empty = static fleet membership)")
		advertise   = flag.String("advertise", "", "address the coordinator should lease to (default: -addr)")
		quiet       = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	opts := dist.WorkerOptions{
		Workers:   *workers,
		MaxInstrs: *maxInstrs,
		Heartbeat: *heartbeat,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *storePath != "" {
		st, err := farm.Open(*storePath, opts.Log)
		if err != nil {
			fatal(fmt.Errorf("open store: %w", err))
		}
		opts.Store = st
	}
	w := dist.NewWorker(opts)
	hs := &http.Server{Addr: *addr, Handler: w.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "empirico-worker: listening on %s\n", *addr)
		}
		errc <- hs.ListenAndServe()
	}()

	leaseAddr := *advertise
	if leaseAddr == "" {
		leaseAddr = *addr
	}
	if *coordinator != "" {
		slots := *workers
		if slots <= 0 {
			slots = runtime.GOMAXPROCS(0)
		}
		regCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := dist.RegisterWorker(regCtx, *coordinator, leaseAddr, slots)
		cancel()
		if err != nil {
			fatal(fmt.Errorf("register with %s: %w", *coordinator, err))
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "empirico-worker: registered %s (slots %d) with %s\n", leaseAddr, slots, *coordinator)
		}
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	if !*quiet {
		fmt.Fprintln(os.Stderr, "empirico-worker: shutting down")
	}
	if *coordinator != "" {
		// Deregister first so the coordinator stops leasing here and pulls
		// the final store delta while this process can still answer.
		deregCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := dist.DeregisterWorker(deregCtx, *coordinator, leaseAddr); err != nil {
			fmt.Fprintln(os.Stderr, "empirico-worker: deregister:", err)
		}
		cancel()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "empirico-worker: drain:", err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "empirico-worker:", err)
	os.Exit(1)
}
