// loadgen drives an empiricod instance with a mixed prediction workload and
// reports serving latency percentiles, throughput and error rate — the
// numbers the serve SLO gate runs on.
//
// Two loop modes:
//
//   - closed loop (default): -conns workers issue requests back to back, so
//     the offered load adapts to the server — the classic saturation probe;
//   - open loop (-rps N): arrivals fire on a fixed schedule regardless of
//     completions, so queueing delay shows up in the tail instead of
//     throttling the arrival rate (the coordinated-omission-free mode).
//
// The endpoint mix defaults to prediction traffic (predict + rank) because
// that is the replica-servable surface; measure traffic is opt-in via -mix,
// since a replica answers it 503 by design and a writer answers it at
// simulation speed, not serving speed.
//
// Output: a human line plus a `go test -bench`-shaped line on stdout that
// cmd/benchcheck -set serve parses, and optionally the full JSON report via
// -out:
//
//	loadgen -addr http://127.0.0.1:8081 -duration 10s -conns 8 |
//	    go run ./cmd/benchcheck -set serve -baseline BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/doe"
)

type config struct {
	addr      string
	workloads []string
	scale     string
	modelKind string
	mix       map[string]float64
	duration  time.Duration
	warmup    time.Duration
	conns     int
	rps       float64
	points    int
	seed      int64
	out       string
	quiet     bool
}

// Report is the JSON document -out writes; BENCH_serve.json gates a subset.
type Report struct {
	Mode        string           `json:"mode"` // "closed" or "open"
	DurationSec float64          `json:"duration_sec"`
	Requests    int64            `json:"requests"`
	Errors      int64            `json:"errors"`
	ErrRate     float64          `json:"err_rate"`
	RPS         float64          `json:"rps"`
	P50Ms       float64          `json:"p50_ms"`
	P95Ms       float64          `json:"p95_ms"`
	P99Ms       float64          `json:"p99_ms"`
	MaxMs       float64          `json:"max_ms"`
	ByEndpoint  map[string]int64 `json:"by_endpoint"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "empiricod base URL")
		wls      = flag.String("workloads", "179.art", "comma-separated workload names to spread requests over")
		scale    = flag.String("scale", "", "request scale (empty = server default)")
		kind     = flag.String("model", "", "model kind for predict requests (empty = server default)")
		mix      = flag.String("mix", "predict=0.9,rank=0.1", "endpoint mix as name=weight pairs (predict|rank|measure)")
		duration = flag.Duration("duration", 10*time.Second, "measured run length (after warmup)")
		warmup   = flag.Duration("warmup", 1*time.Second, "warmup period excluded from the report")
		conns    = flag.Int("conns", 8, "closed-loop concurrent connections (also the open-loop worker pool)")
		rps      = flag.Float64("rps", 0, "open-loop arrival rate; 0 = closed loop")
		points   = flag.Int("points", 1, "design points per predict request")
		seed     = flag.Int64("seed", 1, "deterministic point-generation seed")
		out      = flag.String("out", "", "write the full JSON report here")
		quiet    = flag.Bool("q", false, "suppress the human-readable summary")
	)
	flag.Parse()

	mixW, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	cfg := config{
		addr: strings.TrimRight(*addr, "/"), workloads: strings.Split(*wls, ","),
		scale: *scale, modelKind: *kind, mix: mixW,
		duration: *duration, warmup: *warmup, conns: *conns, rps: *rps,
		points: *points, seed: *seed, out: *out, quiet: *quiet,
	}
	rep, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	if cfg.out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if !cfg.quiet {
		fmt.Fprintf(os.Stderr,
			"loadgen: %s loop, %d requests in %.1fs: %.0f req/s, p50 %.2fms p95 %.2fms p99 %.2fms, %.2f%% errors\n",
			rep.Mode, rep.Requests, rep.DurationSec, rep.RPS, rep.P50Ms, rep.P95Ms, rep.P99Ms, 100*rep.ErrRate)
	}
	// The benchcheck-parseable line: "<value> <unit>" pairs after the count.
	fmt.Printf("BenchmarkServeLoadgen 1 %d ns/op %.2f rps %.4f p50-ms %.4f p95-ms %.4f p99-ms %.6f err-rate\n",
		int64(rep.DurationSec*1e9), rep.RPS, rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.ErrRate)
}

// parseMix turns "predict=0.9,rank=0.1" into normalized endpoint weights.
func parseMix(s string) (map[string]float64, error) {
	out := map[string]float64{}
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: bad mix entry %q (want name=weight)", part)
		}
		switch name {
		case "predict", "rank", "measure":
		default:
			return nil, fmt.Errorf("loadgen: unknown endpoint %q in mix (predict|rank|measure)", name)
		}
		var w float64
		if _, err := fmt.Sscanf(val, "%g", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: bad mix weight %q", val)
		}
		out[name] += w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weights")
	}
	for k := range out {
		out[k] /= total
	}
	return out, nil
}

// pickEndpoint samples the mix. Weights are normalized, so the running-sum
// walk always terminates inside the loop.
func pickEndpoint(mix map[string]float64, u float64) string {
	// Iterate in fixed order for determinism given u.
	last := ""
	for _, name := range []string{"predict", "rank", "measure"} {
		w, ok := mix[name]
		if !ok {
			continue
		}
		last = name
		if u < w {
			return name
		}
		u -= w
	}
	return last
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	err     bool
	name    string
}

func run(cfg config) (*Report, error) {
	if len(cfg.workloads) == 0 || cfg.conns <= 0 {
		return nil, fmt.Errorf("loadgen: need at least one workload and one connection")
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.conns * 2,
			MaxIdleConnsPerHost: cfg.conns * 2,
		},
	}
	// Pre-build request bodies: point generation must not sit on the
	// measured path. A small rotating pool is enough variety to dodge any
	// request-identical caching without per-request allocation.
	bodies := prebuildBodies(cfg, 64)

	measureStart := time.Now().Add(cfg.warmup)
	deadline := measureStart.Add(cfg.duration)

	var (
		mu      sync.Mutex
		samples []sample
	)
	record := func(s sample, at time.Time) {
		if at.Before(measureStart) {
			return
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	mode := "closed"
	if cfg.rps > 0 {
		mode = "open"
		// Open loop: a ticker fires arrivals; a worker pool absorbs them so a
		// slow response delays later requests' completion, never their start.
		arrivals := make(chan int, cfg.conns*4)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(arrivals)
			interval := time.Duration(float64(time.Second) / cfg.rps)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for i := 0; ; i++ {
				if time.Now().After(deadline) {
					return
				}
				select {
				case arrivals <- i:
				default:
					// The pool is saturated: the arrival is dropped and counted
					// as an error, which is what an overloaded open-loop target
					// should report, not silently absorb.
					record(sample{err: true, name: "dropped"}, time.Now())
				}
				<-tick.C
			}
		}()
		for c := 0; c < cfg.conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
				for i := range arrivals {
					record(issue(client, cfg, bodies, rng, i))
				}
			}(c)
		}
	} else {
		for c := 0; c < cfg.conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
				for i := 0; time.Now().Before(deadline); i++ {
					record(issue(client, cfg, bodies, rng, i))
				}
			}(c)
		}
	}
	wg.Wait()
	return summarize(mode, cfg.duration, samples), nil
}

// prebuildBodies renders n predict/measure request payloads over random
// joint-space points, plus the rank URLs, round-robined over the workloads.
type bodySet struct {
	predict [][]byte
	measure [][]byte
	rank    []string
}

func prebuildBodies(cfg config, n int) *bodySet {
	rng := rand.New(rand.NewSource(cfg.seed))
	space := doe.JointSpace()
	bs := &bodySet{}
	for i := 0; i < n; i++ {
		wl := cfg.workloads[i%len(cfg.workloads)]
		pts := make([][]int64, cfg.points)
		for j := range pts {
			pts[j] = space.RandomPoint(rng)
		}
		pb, _ := json.Marshal(map[string]any{
			"workload": wl, "scale": cfg.scale, "model": cfg.modelKind, "points": pts,
		})
		bs.predict = append(bs.predict, pb)
		mb, _ := json.Marshal(map[string]any{"workload": wl, "points": pts})
		bs.measure = append(bs.measure, mb)
		bs.rank = append(bs.rank,
			fmt.Sprintf("%s/v1/rank?workload=%s&n=5&scale=%s", cfg.addr, url.QueryEscape(wl), url.QueryEscape(cfg.scale)))
	}
	return bs
}

// issue sends one request picked from the mix and returns its sample.
func issue(client *http.Client, cfg config, bodies *bodySet, rng *rand.Rand, i int) (sample, time.Time) {
	name := pickEndpoint(cfg.mix, rng.Float64())
	var (
		resp *http.Response
		err  error
	)
	start := time.Now()
	switch name {
	case "predict":
		resp, err = client.Post(cfg.addr+"/v1/predict", "application/json",
			bytes.NewReader(bodies.predict[i%len(bodies.predict)]))
	case "measure":
		resp, err = client.Post(cfg.addr+"/v1/measure", "application/json",
			bytes.NewReader(bodies.measure[i%len(bodies.measure)]))
	default:
		resp, err = client.Get(bodies.rank[i%len(bodies.rank)])
	}
	s := sample{name: name}
	if err != nil {
		s.err = true
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		s.err = resp.StatusCode != http.StatusOK
	}
	done := time.Now()
	s.latency = done.Sub(start)
	return s, done
}

// summarize reduces the samples to the report. Percentiles use the
// nearest-rank method over successful-and-failed requests alike: an error
// that took 30s to surface is tail latency the client felt.
func summarize(mode string, duration time.Duration, samples []sample) *Report {
	rep := &Report{
		Mode:        mode,
		DurationSec: duration.Seconds(),
		ByEndpoint:  map[string]int64{},
	}
	lats := make([]float64, 0, len(samples))
	for _, s := range samples {
		rep.Requests++
		rep.ByEndpoint[s.name]++
		if s.err {
			rep.Errors++
		}
		lats = append(lats, float64(s.latency)/float64(time.Millisecond))
	}
	if rep.Requests > 0 {
		rep.ErrRate = float64(rep.Errors) / float64(rep.Requests)
		rep.RPS = float64(rep.Requests) / duration.Seconds()
	}
	sort.Float64s(lats)
	rep.P50Ms = percentile(lats, 50)
	rep.P95Ms = percentile(lats, 95)
	rep.P99Ms = percentile(lats, 99)
	if n := len(lats); n > 0 {
		rep.MaxMs = lats[n-1]
	}
	return rep
}

// percentile is the nearest-rank percentile of an ascending-sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
