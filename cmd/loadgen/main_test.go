package main

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("predict=3,rank=1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mix["predict"]-0.75) > 1e-12 || math.Abs(mix["rank"]-0.25) > 1e-12 {
		t.Fatalf("normalized mix %v", mix)
	}
	for _, bad := range []string{"", "predict", "predict=-1", "teapot=1", "predict=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("mix %q accepted", bad)
		}
	}
	// The sampler covers the whole unit interval.
	if got := pickEndpoint(mix, 0.5); got != "predict" {
		t.Fatalf("u=0.5 picked %q", got)
	}
	if got := pickEndpoint(mix, 0.9); got != "rank" {
		t.Fatalf("u=0.9 picked %q", got)
	}
	if got := pickEndpoint(mix, 1.0); got != "rank" {
		t.Fatalf("u=1.0 picked %q (must fall into the last bucket)", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {1, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Fatalf("p%.0f of 1..10 = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Fatalf("empty percentile %v", got)
	}
}

func TestSummarize(t *testing.T) {
	samples := []sample{
		{latency: 10 * time.Millisecond, name: "predict"},
		{latency: 20 * time.Millisecond, name: "predict"},
		{latency: 30 * time.Millisecond, name: "rank", err: true},
		{latency: 40 * time.Millisecond, name: "predict"},
	}
	rep := summarize("closed", 2*time.Second, samples)
	if rep.Requests != 4 || rep.Errors != 1 {
		t.Fatalf("counts %+v", rep)
	}
	if rep.ErrRate != 0.25 || rep.RPS != 2 {
		t.Fatalf("rates %+v", rep)
	}
	if rep.P50Ms != 20 || rep.P99Ms != 40 || rep.MaxMs != 40 {
		t.Fatalf("percentiles %+v", rep)
	}
	if rep.ByEndpoint["predict"] != 3 || rep.ByEndpoint["rank"] != 1 {
		t.Fatalf("by-endpoint %+v", rep)
	}
}

// TestRunAgainstStubServer drives the full closed loop briefly against a
// stub endpoint set and checks the report is coherent.
func TestRunAgainstStubServer(t *testing.T) {
	var predicts, ranks atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		predicts.Add(1)
		var req struct {
			Points [][]int64 `json:"points"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Points) == 0 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"predictions": make([]float64, len(req.Points))})
	})
	mux.HandleFunc("GET /v1/rank", func(w http.ResponseWriter, r *http.Request) {
		ranks.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"effects": []any{}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	mix, _ := parseMix("predict=0.8,rank=0.2")
	rep, err := run(config{
		addr: ts.URL, workloads: []string{"179.art"}, mix: mix,
		duration: 300 * time.Millisecond, warmup: 50 * time.Millisecond,
		conns: 4, points: 2, seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Mode != "closed" {
		t.Fatalf("report %+v", rep)
	}
	if rep.ErrRate != 0 {
		t.Fatalf("stub run had errors: %+v", rep)
	}
	if rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Fatalf("percentiles out of order: %+v", rep)
	}
	if predicts.Load() == 0 || ranks.Load() == 0 {
		t.Fatalf("mix not exercised: %d predicts, %d ranks", predicts.Load(), ranks.Load())
	}
}
