// plotfigs turns the JSON report written by `empirico -json` into SVG
// figures mirroring the paper's: Figure 3 (unroll × icache response with the
// linear-model overlay), Figure 5 (learning curves), Figure 6 (actual vs
// predicted scatter) and Figure 7 (speedup bars as grouped points).
//
// Usage:
//
//	empirico -exp all -scale default -json report.json
//	plotfigs -in report.json -out figs/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/exp"
	"repro/internal/plot"
)

func main() {
	in := flag.String("in", "report.json", "JSON report from empirico -json")
	out := flag.String("out", "figs", "output directory for SVG files")
	flag.Parse()

	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var rep exp.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	wrote := 0
	write := func(name string, c *plot.Chart) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(c.SVG()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
		wrote++
	}

	if rep.Fig3 != nil {
		write("fig3.svg", fig3Chart(rep.Fig3))
	}
	if len(rep.Fig5) > 0 {
		write("fig5.svg", fig5Chart(rep.Fig5))
	}
	if len(rep.Fig6) > 0 {
		write("fig6.svg", fig6Chart(rep.Fig6))
	}
	if len(rep.Fig7) > 0 {
		write("fig7.svg", fig7Chart(rep.Fig7))
	}
	if wrote == 0 {
		fatal(fmt.Errorf("plotfigs: report contains no figure data (run empirico -exp all)"))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fig3Chart(res *exp.Fig3Result) *plot.Chart {
	byIC := map[int]map[int]float64{}
	for _, cell := range res.Cells {
		if byIC[cell.ICacheKB] == nil {
			byIC[cell.ICacheKB] = map[int]float64{}
		}
		byIC[cell.ICacheKB][cell.UnrollTimes] = cell.Cycles
	}
	var ics []int
	for ic := range byIC {
		ics = append(ics, ic)
	}
	sort.Ints(ics)
	c := &plot.Chart{
		Title:  "Figure 3: art, execution time vs max unroll factor",
		XLabel: "max unroll factor",
		YLabel: "Mcycles",
	}
	for _, ic := range ics {
		var ufs []int
		for uf := range byIC[ic] {
			ufs = append(ufs, uf)
		}
		sort.Ints(ufs)
		s := plot.Series{Name: fmt.Sprintf("%dKB icache", ic)}
		for _, uf := range ufs {
			s.X = append(s.X, float64(uf))
			s.Y = append(s.Y, byIC[ic][uf]/1e6)
		}
		c.Series = append(c.Series, s)
	}
	// Linear-model overlay for the 8KB icache.
	var ufs []int
	for uf := range res.LinearPred8KB {
		ufs = append(ufs, uf)
	}
	sort.Ints(ufs)
	lin := plot.Series{Name: "linear model @8KB", Dashed: true}
	for _, uf := range ufs {
		lin.X = append(lin.X, float64(uf))
		lin.Y = append(lin.Y, res.LinearPred8KB[uf]/1e6)
	}
	c.Series = append(c.Series, lin)
	return c
}

func fig5Chart(series map[string][]exp.Fig5Point) *plot.Chart {
	c := &plot.Chart{
		Title:  "Figure 5: RBF error vs training set size",
		XLabel: "training points",
		YLabel: "mean test error (%)",
		YZero:  true,
	}
	for _, prog := range sortedKeys(series) {
		s := plot.Series{Name: prog}
		for _, p := range series[prog] {
			s.X = append(s.X, float64(p.Size))
			s.Y = append(s.Y, p.MeanErr)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

func fig6Chart(pairs map[string][]exp.Fig6Pair) *plot.Chart {
	c := &plot.Chart{
		Title:    "Figure 6: actual vs predicted execution time",
		XLabel:   "actual (Mcycles)",
		YLabel:   "predicted (Mcycles)",
		Scatter:  true,
		Diagonal: true,
	}
	for _, prog := range sortedKeys(pairs) {
		s := plot.Series{Name: prog}
		for _, p := range pairs[prog] {
			s.X = append(s.X, p.Actual/1e6)
			s.Y = append(s.Y, p.Predicted/1e6)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

func fig7Chart(rows []exp.SpeedupRow) *plot.Chart {
	c := &plot.Chart{
		Title:   "Figure 7: speedup over -O2 at model-prescribed settings",
		XLabel:  "benchmark index (grouped by configuration)",
		YLabel:  "speedup",
		Scatter: true,
	}
	configs := []string{"constrained", "typical", "aggressive"}
	progIdx := map[string]int{}
	for _, r := range rows {
		if _, ok := progIdx[r.Program]; !ok {
			progIdx[r.Program] = len(progIdx)
		}
	}
	for ci, cfg := range configs {
		actual := plot.Series{Name: cfg + " actual"}
		pred := plot.Series{Name: cfg + " predicted"}
		for _, r := range rows {
			if r.Config != cfg {
				continue
			}
			x := float64(progIdx[r.Program]) + float64(ci)*0.25 - 0.25
			actual.X = append(actual.X, x)
			actual.Y = append(actual.Y, r.ActualGA)
			pred.X = append(pred.X, x)
			pred.Y = append(pred.Y, r.PredictedGA)
		}
		c.Series = append(c.Series, actual, pred)
	}
	return c
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
