// wlgen generates seeded MiniC workloads from the parameterized kernel
// templates in internal/wlgen. The same seed always yields byte-identical
// programs, so a corpus is a (seed, n) pair, not an artifact to archive.
//
// Usage:
//
//	wlgen -templates                 # list kernel templates
//	wlgen -seed 42 -n 3              # print three programs to stdout
//	wlgen -seed 42 -n 100 -o corpus/ # write corpus/<name>.mc files
//	wlgen -seed 42 -n 50 -verify     # compile + run each at O0 and O3,
//	                                 # checking result agreement (CI gate)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/compiler"
	"repro/internal/lang"
	"repro/internal/sim"
	"repro/internal/wlgen"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "corpus seed (same seed + n prefix => identical programs)")
		n         = flag.Int("n", 1, "number of programs to generate")
		out       = flag.String("o", "", "write <name>.mc files into this directory instead of stdout")
		templates = flag.Bool("templates", false, "list template names and exit")
		verify    = flag.Bool("verify", false, "compile each program at O0 and O3, run both, and check the results agree")
		maxInstrs = flag.Int64("max-instrs", 20_000_000, "per-run dynamic instruction bound in -verify mode")
	)
	flag.Parse()

	if *templates {
		for _, name := range wlgen.TemplateNames() {
			fmt.Println(name)
		}
		return
	}
	if *n <= 0 {
		fatal(fmt.Errorf("wlgen: -n must be positive, got %d", *n))
	}
	ps := wlgen.Corpus(*seed, *n)

	if *verify {
		for _, p := range ps {
			if err := verifyProgram(p, *maxInstrs); err != nil {
				fatal(fmt.Errorf("wlgen: %s: %w", p.Name, err))
			}
		}
		fmt.Printf("wlgen: %d programs verified (seed %d)\n", len(ps), *seed)
		return
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, p := range ps {
			path := filepath.Join(*out, p.Name+".mc")
			if err := os.WriteFile(path, []byte(p.Source), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wlgen: wrote %d programs to %s\n", len(ps), *out)
		return
	}

	for _, p := range ps {
		fmt.Printf("// %s (template %s, seed %#x)\n%s\n", p.Name, p.Template, uint64(p.Seed), p.Source)
	}
}

// verifyProgram is the CI validity gate: the program must parse, check,
// compile at O0 and O3, and compute the same result under both.
func verifyProgram(p wlgen.Program, maxInstrs int64) error {
	ast, err := lang.Parse(p.Source)
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if err := lang.Check(ast); err != nil {
		return fmt.Errorf("check: %w", err)
	}
	var ref int64
	for i, o := range []compiler.Options{compiler.O0(), compiler.O3()} {
		prog, _, err := compiler.Compile(ast, o)
		if err != nil {
			return fmt.Errorf("compile O%d: %w", i*3, err)
		}
		_, rv, err := sim.NewExecutor(prog).Run(maxInstrs)
		if err != nil {
			return fmt.Errorf("run O%d: %w", i*3, err)
		}
		if i == 0 {
			ref = rv
		} else if rv != ref {
			return fmt.Errorf("O3 result %d != O0 result %d", rv, ref)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
