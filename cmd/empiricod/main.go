// empiricod serves the measurement and modeling pipeline over HTTP: model
// predictions, ground-truth simulation, model-based flag search and
// significant-term ranking, with Prometheus-style metrics.
//
// Usage:
//
//	empiricod -addr :8080 -scale quick -cache .empirico-cache
//
// Endpoints:
//
//	POST /v1/predict   batch model predictions at raw design points
//	POST /v1/predict-program  cross-model predictions for raw MiniC source
//	POST /v1/measure   ground truth (compile + simulate), coalesced
//	POST /v1/search    GA flag search, streamed generation-by-generation
//	GET  /v1/rank      significant-term ranking of the fitted model
//	POST /v1/reload    rescan the artifact directory (also on SIGHUP)
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text exposition
//
// With -artifacts DIR every fitted model set is persisted and the daemon
// warm-boots from the directory; with -replica it serves predictions from
// those artifacts only (no farm, no training) — run one writer and any
// number of replicas over a shared directory. SIGHUP (or POST /v1/reload)
// swaps freshly persisted artifacts in without a restart.
//
// The daemon drains in-flight requests on SIGINT/SIGTERM, then checkpoints
// the measurement store before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, mounted only with -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/farm"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scale    = flag.String("scale", "default", "default harness scale: quick|default|paper")
		cacheDir = flag.String("cache", "", "directory for the durable measurement cache")
		workers  = flag.Int("workers", 0, "farm + analytics workers (0 = GOMAXPROCS)")
		models   = flag.Int("max-models", 0, "resident (workload, scale) model sets (0 = 8)")
		window   = flag.Duration("window", 0, "measure coalescing window (0 = 10ms)")
		rate     = flag.Float64("rate", 0, "per-endpoint requests/second (0 = 50)")
		burst    = flag.Float64("burst", 0, "per-endpoint burst (0 = 100)")
		inflight = flag.Int("max-inflight", 0, "concurrent requests before shedding (0 = 256)")
		train    = flag.Int("train", 0, "override training-design size (0 = scale default; smoke tests)")
		artDir   = flag.String("artifacts", "", "directory for persisted model artifacts (warm boot + reload)")
		replica  = flag.Bool("replica", false, "serve predictions from persisted artifacts only (requires -artifacts; no farm, no training)")
		pprof    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for HTTP handlers")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain timeout for in-flight measurement leases")
		waddrs   = flag.String("workers-addrs", "", "comma-separated empirico-worker addresses; measurements shard across them instead of running in-process")
		ctrlAddr = flag.String("control-addr", "", "serve the coordinator control API (worker register/deregister) on this address; implies an elastic fleet, usable with an empty -workers-addrs")
		quiet    = flag.Bool("q", false, "suppress progress output")

		crossSeed = flag.Int64("cross-seed", 0, "predict-program: wlgen corpus seed (0 = default)")
		crossN    = flag.Int("cross-corpus", 0, "predict-program: wlgen programs added to the seed suite (0 = default)")
		crossPts  = flag.Int("cross-points", 0, "predict-program: measured joint points per corpus program (0 = default)")
	)
	flag.Parse()

	if *replica && *artDir == "" {
		fatal(fmt.Errorf("-replica requires -artifacts"))
	}
	opts := serve.Options{
		Scale:           *scale,
		CacheDir:        *cacheDir,
		Workers:         *workers,
		TrainPoints:     *train,
		MaxModels:       *models,
		ArtifactDir:     *artDir,
		Replica:         *replica,
		CoalesceWindow:  *window,
		RatePerSec:      *rate,
		RateBurst:       *burst,
		MaxInFlight:     *inflight,
		CrossCorpusSeed: *crossSeed,
		CrossCorpusSize: *crossN,
		CrossPointsPer:  *crossPts,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *waddrs != "" || *ctrlAddr != "" {
		var addrs []string
		if *waddrs != "" {
			addrs = strings.Split(*waddrs, ",")
		}
		opts.MakeBackend = func(fo farm.Options) farm.Backend {
			c, err := dist.New(dist.Options{Addrs: addrs, Dynamic: *ctrlAddr != "", Store: fo.Store, Log: fo.Log})
			if err != nil {
				fatal(err)
			}
			if *ctrlAddr != "" {
				go func() {
					if err := http.ListenAndServe(*ctrlAddr, c.Handler()); err != nil {
						fmt.Fprintln(os.Stderr, "empiricod: control listener:", err)
					}
				}()
			}
			return c
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "empiricod: sharding measurements across workers (%d static, control %s)\n", len(addrs), *ctrlAddr)
		}
	}
	srv := serve.New(opts)
	handler := srv.Handler()
	if *pprof {
		// net/http/pprof registers on DefaultServeMux; expose it only when
		// asked — profiling endpoints are an operator tool, not part of the
		// public API surface.
		root := http.NewServeMux()
		root.Handle("/debug/pprof/", http.DefaultServeMux)
		root.Handle("/", handler)
		handler = root
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *artDir != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				loaded, skipped, err := srv.ReloadArtifacts()
				if err != nil {
					fmt.Fprintln(os.Stderr, "empiricod: reload:", err)
					continue
				}
				if !*quiet {
					fmt.Fprintf(os.Stderr, "empiricod: reload: %d artifacts loaded, %d skipped\n", loaded, skipped)
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "empiricod: listening on %s (scale %s)\n", *addr, *scale)
		}
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Stop accepting, drain handlers, let in-flight measurement leases
	// finish (bounded; stragglers are cancelled and requeued so nothing is
	// silently lost), then checkpoint the farm stores.
	if !*quiet {
		fmt.Fprintln(os.Stderr, "empiricod: shutting down")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "empiricod: drain:", err)
	}
	drainCtx, dcancel := context.WithTimeout(context.Background(), *drainTO)
	defer dcancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "empiricod: lease drain:", err)
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "empiricod:", err)
	os.Exit(1)
}
