// minicc is the MiniC compiler command line: it compiles a source file (or
// one of the built-in benchmark programs) at a chosen optimization level,
// optionally dumping the optimized IR or the generated assembly, and reports
// static statistics.
//
// Usage:
//
//	minicc -src prog.mc -O2 -dump-asm
//	minicc -bench 179.art -O3 -unroll -dump-ir
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/lang"
	"repro/internal/workloads"
)

func main() {
	var (
		srcPath  = flag.String("src", "", "MiniC source file to compile")
		bench    = flag.String("bench", "", "compile a built-in benchmark (e.g. 179.art)")
		input    = flag.String("input", "train", "benchmark input class: train|ref")
		level    = flag.String("O", "2", "optimization level: 0|2|3")
		unroll   = flag.Bool("unroll", false, "additionally enable -funroll-loops")
		dumpIR   = flag.Bool("dump-ir", false, "print the optimized IR")
		dumpAsm  = flag.Bool("dump-asm", false, "print the generated assembly")
		width    = flag.Int("issue-width", 4, "target issue width for the scheduler model")
		flagsStr = flag.String("flags", "", "explicit 14-value comma-separated Table 1 settings (overrides -O)")
		outPath  = flag.String("o", "", "write the compiled binary object to this path")
		fmtSrc   = flag.Bool("fmt", false, "print the program formatted canonically and exit")
	)
	flag.Parse()

	src, name, err := loadSource(*srcPath, *bench, *input)
	if err != nil {
		fatal(err)
	}
	opts, err := buildOptions(*level, *unroll, *width, *flagsStr)
	if err != nil {
		fatal(err)
	}

	prog, err := lang.Parse(src)
	if err != nil {
		fatal(err)
	}
	if err := lang.Check(prog); err != nil {
		fatal(err)
	}
	if *fmtSrc {
		fmt.Print(lang.Format(prog))
		return
	}

	if *dumpIR {
		irProg, err := compiler.Lower(prog)
		if err != nil {
			fatal(err)
		}
		compiler.OptimizeIR(irProg, opts)
		for _, f := range irProg.Funcs {
			fmt.Println(f.String())
		}
	}

	bin, stats, err := compiler.Compile(prog, opts)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := bin.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *dumpAsm {
		for i, in := range bin.Instrs {
			for name, entry := range bin.Symbols {
				if int32(i) == entry {
					fmt.Printf("%s:\n", name)
				}
			}
			fmt.Printf("%6d\t%s\n", i, in.String())
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d IR instrs, %d machine instrs, %d spill slots\n",
		name, stats.IRInstrs, stats.MachineInstrs, stats.SpillSlots)
	fmt.Fprintf(os.Stderr, "options: %s\n", opts)
}

func loadSource(srcPath, bench, input string) (string, string, error) {
	switch {
	case srcPath != "" && bench != "":
		return "", "", fmt.Errorf("minicc: -src and -bench are mutually exclusive")
	case srcPath != "":
		data, err := os.ReadFile(srcPath)
		if err != nil {
			return "", "", err
		}
		return string(data), srcPath, nil
	case bench != "":
		w, err := workloads.Get(bench, workloads.InputClass(input))
		if err != nil {
			return "", "", err
		}
		return w.Source, w.Key(), nil
	default:
		return "", "", fmt.Errorf("minicc: need -src or -bench (try -bench 179.art)")
	}
}

func buildOptions(level string, unroll bool, width int, flagsStr string) (compiler.Options, error) {
	var opts compiler.Options
	switch level {
	case "0":
		opts = compiler.O0()
	case "2":
		opts = compiler.O2()
	case "3":
		opts = compiler.O3()
	default:
		return opts, fmt.Errorf("minicc: unknown level -O%s", level)
	}
	if flagsStr != "" {
		var vals []int64
		for _, part := range splitComma(flagsStr) {
			var v int64
			if _, err := fmt.Sscanf(part, "%d", &v); err != nil {
				return opts, fmt.Errorf("minicc: bad -flags entry %q", part)
			}
			vals = append(vals, v)
		}
		if len(vals) != doe.NumCompilerVars {
			return opts, fmt.Errorf("minicc: -flags needs %d values, got %d", doe.NumCompilerVars, len(vals))
		}
		opts = doe.ToOptions(vals, width)
	}
	if unroll {
		opts.UnrollLoops = true
	}
	opts.TargetIssueWidth = width
	return opts, nil
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
