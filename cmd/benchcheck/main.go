// benchcheck parses `go test -bench` output on stdin, writes the headline
// numbers to a JSON file at the repo root, and fails (exit 1) when a
// committed baseline shows a regression beyond -max-regress. CI runs it
// after the benchmark step so a slowdown fails the build instead of landing
// silently. Two benchmark sets are understood:
//
//	-set sim (default): simulator throughput (fused and basic-block
//	    translated engines) + SMARTS sampling + warm-state checkpoints.
//	    Gated on detailed-simulation instructions per second, on the
//	    same-run bb/fused wall-clock ratio (a floor just under parity:
//	    the translated engine must never be slower than the interpreter
//	    it replaces, with a small allowance for host jitter), and on a
//	    hard 2x floor for the warm-checkpoint hit speedup (the ratio is
//	    same-process, so it holds on any host).
//
//	go test -run '^$' -bench 'SimulatorThroughput$|TranslatedThroughput$|SMARTSSpeedup$|WarmCheckpointSpeedup$' -benchtime=1x . |
//	    go run ./cmd/benchcheck -baseline BENCH_sim.json -out BENCH_sim.json
//
//	-set model: the analytics layer (MARS fit, D-optimal exchange,
//	    cross-validation, GA search), gated on wall-clock per stage plus a
//	    hard floor on the D-optimal incremental-vs-reference speedup (the
//	    one analytics ratio that is algorithmic rather than core-count
//	    dependent).
//
//	go test -run '^$' -bench 'FitMARS$|DOptimal$|CrossValidate$|GASearch$' -benchtime=1x . |
//	    go run ./cmd/benchcheck -set model -baseline BENCH_model.json -out BENCH_model.json
//
//	-set farm: the measurement farm's batch planner, gated on the
//	    grouped-vs-ungrouped wall-clock ratio of a fixed-flags Table-7
//	    sweep (a hard floor: the shared-trace path eliminates CPU work,
//	    so the ratio holds on any core count) plus the grouped batch's
//	    wall clock.
//
//	go test -run '^$' -bench 'MeasureBatchShared$' -benchtime=1x . |
//	    go run ./cmd/benchcheck -set farm -baseline BENCH_farm.json -out BENCH_farm.json
//
//	-set dist: the distributed measurement plane, gated on the
//	    two-worker-vs-one-worker wall-clock ratio of a grouped sweep
//	    through the coordinator (a hard floor: the workers are
//	    fixed-service-time stubs, so the ratio measures scheduling
//	    overlap and holds on any core count) plus the two-worker wall
//	    clock.
//
//	go test -run '^$' -bench 'DistributedSweep$' -benchtime=1x . |
//	    go run ./cmd/benchcheck -set dist -baseline BENCH_dist.json -out BENCH_dist.json
//
//	-set serve: the prediction plane's serving SLO, fed by cmd/loadgen
//	    instead of `go test -bench`. Gated on hard caps for the p99
//	    latency (-max-p99-ms) and error rate (-max-err-rate) — the SLO —
//	    plus a baseline regression check on p99.
//
//	loadgen -addr http://127.0.0.1:8081 -duration 10s |
//	    go run ./cmd/benchcheck -set serve -baseline BENCH_serve.json -out BENCH_serve.json
//
// Regenerate a baseline by committing the freshly written file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// SimNumbers is the schema of BENCH_sim.json.
type SimNumbers struct {
	// InstrsPerSec is detailed-simulation throughput from
	// BenchmarkSimulatorThroughput (committed instructions per second).
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// BBInstrsPerSec is the basic-block translated engine's throughput
	// from BenchmarkTranslatedThroughput.
	BBInstrsPerSec float64 `json:"bb_instrs_per_sec"`
	// BBVsFusedX is the same-run fused/bb wall-clock ratio from the same
	// benchmark; >1 means the translated engine is faster.
	BBVsFusedX float64 `json:"bb_vs_fused_x"`
	// SMARTSSpeedupX is the detailed/sampled wall-clock ratio from
	// BenchmarkSMARTSSpeedup.
	SMARTSSpeedupX float64 `json:"smarts_speedup_x"`
	// SMARTSRelErrPct is the sampled estimate's relative error (%) from
	// the same benchmark.
	SMARTSRelErrPct float64 `json:"smarts_est_relerr_pct"`
	// WarmCkptHitSpeedupX is the build/replay wall-clock ratio of a
	// warm-checkpoint hit from BenchmarkWarmCheckpointSpeedup.
	WarmCkptHitSpeedupX float64 `json:"warm_checkpoint_hit_speedup"`
}

// ModelNumbers is the schema of BENCH_model.json. The *Ms fields are
// wall-clock milliseconds of the optimized path; lower is better.
type ModelNumbers struct {
	FitMARSMs        float64 `json:"fit_mars_ms"`
	DOptimalMs       float64 `json:"doptimal_ms"`
	DOptimalSpeedupX float64 `json:"doptimal_speedup_x"`
	CrossValMs       float64 `json:"crossval_ms"`
	CrossValSpeedupX float64 `json:"crossval_speedup_x"`
	GASearchMs       float64 `json:"ga_ms"`
	GASpeedupX       float64 `json:"ga_speedup_x"`
	// FeatureExtractMs is the cold feature-extraction wall clock over the
	// full seed suite from BenchmarkFeatureExtract.
	FeatureExtractMs float64 `json:"feature_extract_ms"`
}

// FarmNumbers is the schema of BENCH_farm.json.
type FarmNumbers struct {
	// GroupedMs is wall-clock milliseconds for the grouped (compile-once /
	// interpret-once) batch from BenchmarkMeasureBatchShared.
	GroupedMs float64 `json:"grouped_ms"`
	// SharedSpeedupX is the ungrouped/grouped wall-clock ratio from the
	// same benchmark.
	SharedSpeedupX float64 `json:"shared_speedup_x"`
	// Points is the batch size the ratio was measured at.
	Points float64 `json:"points"`
}

// ServeNumbers is the schema of BENCH_serve.json, parsed from cmd/loadgen's
// BenchmarkServeLoadgen line.
type ServeNumbers struct {
	// RPS is serving throughput (requests per second), recorded for
	// context but not gated: it is core-count dependent.
	RPS float64 `json:"rps"`
	// P50Ms/P95Ms/P99Ms are latency percentiles in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	// P99Ms carries the SLO: hard-capped by -max-p99-ms and gated against
	// the baseline by -max-regress.
	P99Ms float64 `json:"p99_ms"`
	// ErrRate is the non-200 fraction, hard-capped by -max-err-rate.
	ErrRate float64 `json:"err_rate"`
}

// DistNumbers is the schema of BENCH_dist.json.
type DistNumbers struct {
	// TwoWorkerMs is wall-clock milliseconds for the sweep through a
	// coordinator over two workers, from BenchmarkDistributedSweep.
	TwoWorkerMs float64 `json:"two_worker_ms"`
	// DistSpeedupX is the one-worker/two-worker wall-clock ratio from the
	// same benchmark.
	DistSpeedupX float64 `json:"dist_speedup_x"`
	// Groups is the number of shared-binary groups the sweep planned into.
	Groups float64 `json:"groups"`
	// HeteroMs is wall-clock milliseconds for the capacity-weighted sweep
	// over the lopsided 1-slot/3-slot fleet, from BenchmarkHeterogeneousSweep.
	HeteroMs float64 `json:"hetero_ms"`
	// HeteroSpeedupX is the uniform-cap/capacity-weighted wall-clock ratio
	// from the same benchmark.
	HeteroSpeedupX float64 `json:"hetero_speedup_x"`
}

func main() {
	set := flag.String("set", "sim", "benchmark set to parse and gate: sim|model|farm|dist")
	baselinePath := flag.String("baseline", "", "committed baseline to compare against (default BENCH_<set>.json; missing file skips the check)")
	outPath := flag.String("out", "", "where to write the fresh numbers (default BENCH_<set>.json)")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum tolerated fractional regression")
	minDOptSpeedup := flag.Float64("min-doptimal-speedup", 3, "hard floor on the model set's doptimal_speedup_x")
	minSharedSpeedup := flag.Float64("min-shared-speedup", 2, "hard floor on the farm set's shared_speedup_x")
	minDistSpeedup := flag.Float64("min-dist-speedup", 1.7, "hard floor on the dist set's dist_speedup_x")
	minHeteroSpeedup := flag.Float64("min-hetero-speedup", 1.3, "hard floor on the dist set's hetero_speedup_x")
	minBBSpeedup := flag.Float64("min-bb-speedup", 0.97, "floor on the sim set's bb_vs_fused_x (parity minus host jitter)")
	minCkptSpeedup := flag.Float64("min-ckpt-speedup", 2, "hard floor on the sim set's warm_checkpoint_hit_speedup")
	maxP99 := flag.Float64("max-p99-ms", 250, "hard cap on the serve set's p99_ms (the SLO)")
	maxErrRate := flag.Float64("max-err-rate", 0.01, "hard cap on the serve set's err_rate")
	flag.Parse()

	def := "BENCH_" + *set + ".json"
	if *baselinePath == "" {
		*baselinePath = def
	}
	if *outPath == "" {
		*outPath = def
	}

	lines, err := benchLines(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	switch *set {
	case "sim":
		checkSim(lines, *baselinePath, *outPath, *maxRegress, *minBBSpeedup, *minCkptSpeedup)
	case "model":
		checkModel(lines, *baselinePath, *outPath, *maxRegress, *minDOptSpeedup)
	case "farm":
		checkFarm(lines, *baselinePath, *outPath, *maxRegress, *minSharedSpeedup)
	case "dist":
		checkDist(lines, *baselinePath, *outPath, *maxRegress, *minDistSpeedup, *minHeteroSpeedup)
	case "serve":
		checkServe(lines, *baselinePath, *outPath, *maxRegress, *maxP99, *maxErrRate)
	default:
		fatal(fmt.Errorf("benchcheck: unknown -set %q (sim|model|farm|dist|serve)", *set))
	}
}

func checkSim(lines []benchLine, baselinePath, outPath string, maxRegress, minBBSpeedup, minCkptSpeedup float64) {
	cur := &SimNumbers{}
	var haveThroughput, haveBB, haveSMARTS, haveCkpt bool
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l.name, "BenchmarkSimulatorThroughput"):
			if l.metrics["ns/op"] > 0 {
				cur.InstrsPerSec = l.metrics["instrs/op"] / (l.metrics["ns/op"] * 1e-9)
				haveThroughput = true
			}
		case strings.HasPrefix(l.name, "BenchmarkTranslatedThroughput"):
			cur.BBInstrsPerSec = l.metrics["bb-instrs-per-sec"]
			cur.BBVsFusedX = l.metrics["bb-vs-fused-x"]
			haveBB = true
		case strings.HasPrefix(l.name, "BenchmarkSMARTSSpeedup"):
			cur.SMARTSSpeedupX = l.metrics["speedup-x"]
			cur.SMARTSRelErrPct = l.metrics["est-relerr-%"]
			haveSMARTS = true
		case strings.HasPrefix(l.name, "BenchmarkWarmCheckpointSpeedup"):
			cur.WarmCkptHitSpeedupX = l.metrics["ckpt-hit-speedup-x"]
			haveCkpt = true
		}
	}
	if !haveThroughput || !haveBB || !haveSMARTS || !haveCkpt {
		fatal(fmt.Errorf("benchcheck: missing benchmark output (throughput=%v bb=%v smarts=%v ckpt=%v)",
			haveThroughput, haveBB, haveSMARTS, haveCkpt))
	}

	base := &SimNumbers{}
	writeAndLoadBaseline(cur, base, baselinePath, outPath)
	fmt.Printf("benchcheck: %.3g instrs/sec (bb %.3g, %.2fx vs fused), SMARTS %.2fx (%.1f%% err), ckpt hit %.1fx\n",
		cur.InstrsPerSec, cur.BBInstrsPerSec, cur.BBVsFusedX,
		cur.SMARTSSpeedupX, cur.SMARTSRelErrPct, cur.WarmCkptHitSpeedupX)
	if cur.BBVsFusedX < minBBSpeedup {
		fatal(fmt.Errorf("benchcheck: translated engine %.2fx of fused, below floor %.2fx",
			cur.BBVsFusedX, minBBSpeedup))
	}
	if cur.WarmCkptHitSpeedupX < minCkptSpeedup {
		fatal(fmt.Errorf("benchcheck: warm-checkpoint hit speedup %.2fx below floor %.1fx",
			cur.WarmCkptHitSpeedupX, minCkptSpeedup))
	}
	if base.InstrsPerSec <= 0 {
		fmt.Println("benchcheck: no baseline, skipping regression check")
		return
	}
	ratio := cur.InstrsPerSec / base.InstrsPerSec
	fmt.Printf("benchcheck: throughput %.2fx of baseline (%.3g instrs/sec)\n", ratio, base.InstrsPerSec)
	if ratio < 1-maxRegress {
		fatal(fmt.Errorf("benchcheck: simulator throughput regressed %.0f%% (limit %.0f%%)",
			100*(1-ratio), 100*maxRegress))
	}
	if base.BBInstrsPerSec > 0 {
		bbRatio := cur.BBInstrsPerSec / base.BBInstrsPerSec
		fmt.Printf("benchcheck: bb throughput %.2fx of baseline (%.3g instrs/sec)\n", bbRatio, base.BBInstrsPerSec)
		if bbRatio < 1-maxRegress {
			fatal(fmt.Errorf("benchcheck: translated-engine throughput regressed %.0f%% (limit %.0f%%)",
				100*(1-bbRatio), 100*maxRegress))
		}
	}
}

func checkModel(lines []benchLine, baselinePath, outPath string, maxRegress, minDOptSpeedup float64) {
	cur := &ModelNumbers{}
	var have int
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l.name, "BenchmarkFitMARS"):
			cur.FitMARSMs = l.metrics["ns/op"] * 1e-6
			have++
		case strings.HasPrefix(l.name, "BenchmarkDOptimal"):
			cur.DOptimalMs = l.metrics["fast-ms"]
			cur.DOptimalSpeedupX = l.metrics["speedup-x"]
			have++
		case strings.HasPrefix(l.name, "BenchmarkCrossValidate"):
			cur.CrossValMs = l.metrics["par-ms"]
			cur.CrossValSpeedupX = l.metrics["speedup-x"]
			have++
		case strings.HasPrefix(l.name, "BenchmarkGASearch"):
			cur.GASearchMs = l.metrics["par-ms"]
			cur.GASpeedupX = l.metrics["speedup-x"]
			have++
		case strings.HasPrefix(l.name, "BenchmarkFeatureExtract"):
			cur.FeatureExtractMs = l.metrics["extract-ms"]
			have++
		}
	}
	if have != 5 {
		fatal(fmt.Errorf("benchcheck: model set needs 5 benchmarks, parsed %d", have))
	}

	base := &ModelNumbers{}
	writeAndLoadBaseline(cur, base, baselinePath, outPath)
	fmt.Printf("benchcheck: mars %.0fms, doptimal %.0fms (%.1fx vs ref), cv %.0fms (%.2fx), ga %.0fms (%.2fx), features %.0fms\n",
		cur.FitMARSMs, cur.DOptimalMs, cur.DOptimalSpeedupX,
		cur.CrossValMs, cur.CrossValSpeedupX, cur.GASearchMs, cur.GASpeedupX,
		cur.FeatureExtractMs)
	if cur.DOptimalSpeedupX < minDOptSpeedup {
		fatal(fmt.Errorf("benchcheck: doptimal incremental speedup %.2fx below floor %.1fx",
			cur.DOptimalSpeedupX, minDOptSpeedup))
	}
	if base.FitMARSMs <= 0 {
		fmt.Println("benchcheck: no baseline, skipping regression check")
		return
	}
	// Wall-clock gates: a stage is a regression when it got slower than the
	// baseline by more than max-regress. (The CV/GA speedup-x ratios are
	// core-count dependent, so they are recorded but not gated.)
	stages := []struct {
		name      string
		cur, base float64
	}{
		{"fit_mars_ms", cur.FitMARSMs, base.FitMARSMs},
		{"doptimal_ms", cur.DOptimalMs, base.DOptimalMs},
		{"crossval_ms", cur.CrossValMs, base.CrossValMs},
		{"ga_ms", cur.GASearchMs, base.GASearchMs},
		{"feature_extract_ms", cur.FeatureExtractMs, base.FeatureExtractMs},
	}
	for _, s := range stages {
		if s.base <= 0 {
			continue
		}
		ratio := s.cur / s.base
		fmt.Printf("benchcheck: %s %.2fx of baseline (%.0fms)\n", s.name, ratio, s.base)
		if ratio > 1+maxRegress {
			fatal(fmt.Errorf("benchcheck: %s regressed %.0f%% (limit %.0f%%)",
				s.name, 100*(ratio-1), 100*maxRegress))
		}
	}
}

func checkFarm(lines []benchLine, baselinePath, outPath string, maxRegress, minSharedSpeedup float64) {
	cur := &FarmNumbers{}
	var have bool
	for _, l := range lines {
		if strings.HasPrefix(l.name, "BenchmarkMeasureBatchShared") {
			cur.GroupedMs = l.metrics["grouped-ms"]
			cur.SharedSpeedupX = l.metrics["shared-x"]
			cur.Points = l.metrics["points"]
			have = true
		}
	}
	if !have {
		fatal(fmt.Errorf("benchcheck: farm set needs BenchmarkMeasureBatchShared, not found in input"))
	}

	base := &FarmNumbers{}
	writeAndLoadBaseline(cur, base, baselinePath, outPath)
	fmt.Printf("benchcheck: grouped batch %.0fms, %.2fx vs per-point path (%d points)\n",
		cur.GroupedMs, cur.SharedSpeedupX, int(cur.Points))
	if cur.SharedSpeedupX < minSharedSpeedup {
		fatal(fmt.Errorf("benchcheck: shared-trace speedup %.2fx below floor %.1fx",
			cur.SharedSpeedupX, minSharedSpeedup))
	}
	if base.GroupedMs <= 0 {
		fmt.Println("benchcheck: no baseline, skipping regression check")
		return
	}
	ratio := cur.GroupedMs / base.GroupedMs
	fmt.Printf("benchcheck: grouped_ms %.2fx of baseline (%.0fms)\n", ratio, base.GroupedMs)
	if ratio > 1+maxRegress {
		fatal(fmt.Errorf("benchcheck: grouped_ms regressed %.0f%% (limit %.0f%%)",
			100*(ratio-1), 100*maxRegress))
	}
}

func checkDist(lines []benchLine, baselinePath, outPath string, maxRegress, minDistSpeedup, minHeteroSpeedup float64) {
	cur := &DistNumbers{}
	var have, haveHetero bool
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l.name, "BenchmarkDistributedSweep"):
			cur.TwoWorkerMs = l.metrics["two-worker-ms"]
			cur.DistSpeedupX = l.metrics["dist-speedup-x"]
			cur.Groups = l.metrics["groups"]
			have = true
		case strings.HasPrefix(l.name, "BenchmarkHeterogeneousSweep"):
			cur.HeteroMs = l.metrics["hetero-ms"]
			cur.HeteroSpeedupX = l.metrics["hetero-speedup-x"]
			haveHetero = true
		}
	}
	if !have {
		fatal(fmt.Errorf("benchcheck: dist set needs BenchmarkDistributedSweep, not found in input"))
	}
	if !haveHetero {
		fatal(fmt.Errorf("benchcheck: dist set needs BenchmarkHeterogeneousSweep, not found in input"))
	}

	base := &DistNumbers{}
	writeAndLoadBaseline(cur, base, baselinePath, outPath)
	fmt.Printf("benchcheck: two-worker sweep %.0fms, %.2fx vs one worker (%d groups)\n",
		cur.TwoWorkerMs, cur.DistSpeedupX, int(cur.Groups))
	fmt.Printf("benchcheck: heterogeneous sweep %.0fms, %.2fx vs uniform cap\n",
		cur.HeteroMs, cur.HeteroSpeedupX)
	if cur.DistSpeedupX < minDistSpeedup {
		fatal(fmt.Errorf("benchcheck: distributed speedup %.2fx below floor %.1fx",
			cur.DistSpeedupX, minDistSpeedup))
	}
	if cur.HeteroSpeedupX < minHeteroSpeedup {
		fatal(fmt.Errorf("benchcheck: capacity-weighted speedup %.2fx below floor %.1fx",
			cur.HeteroSpeedupX, minHeteroSpeedup))
	}
	if base.TwoWorkerMs <= 0 {
		fmt.Println("benchcheck: no baseline, skipping regression check")
		return
	}
	ratio := cur.TwoWorkerMs / base.TwoWorkerMs
	fmt.Printf("benchcheck: two_worker_ms %.2fx of baseline (%.0fms)\n", ratio, base.TwoWorkerMs)
	if ratio > 1+maxRegress {
		fatal(fmt.Errorf("benchcheck: two_worker_ms regressed %.0f%% (limit %.0f%%)",
			100*(ratio-1), 100*maxRegress))
	}
	if base.HeteroMs > 0 {
		hratio := cur.HeteroMs / base.HeteroMs
		fmt.Printf("benchcheck: hetero_ms %.2fx of baseline (%.0fms)\n", hratio, base.HeteroMs)
		if hratio > 1+maxRegress {
			fatal(fmt.Errorf("benchcheck: hetero_ms regressed %.0f%% (limit %.0f%%)",
				100*(hratio-1), 100*maxRegress))
		}
	}
}

func checkServe(lines []benchLine, baselinePath, outPath string, maxRegress, maxP99, maxErrRate float64) {
	cur := &ServeNumbers{}
	var have bool
	for _, l := range lines {
		if strings.HasPrefix(l.name, "BenchmarkServeLoadgen") {
			cur.RPS = l.metrics["rps"]
			cur.P50Ms = l.metrics["p50-ms"]
			cur.P95Ms = l.metrics["p95-ms"]
			cur.P99Ms = l.metrics["p99-ms"]
			cur.ErrRate = l.metrics["err-rate"]
			have = true
		}
	}
	if !have {
		fatal(fmt.Errorf("benchcheck: serve set needs BenchmarkServeLoadgen (cmd/loadgen output), not found in input"))
	}

	base := &ServeNumbers{}
	writeAndLoadBaseline(cur, base, baselinePath, outPath)
	fmt.Printf("benchcheck: %.0f req/s, p50 %.2fms p95 %.2fms p99 %.2fms, err rate %.4f\n",
		cur.RPS, cur.P50Ms, cur.P95Ms, cur.P99Ms, cur.ErrRate)
	// The SLO itself: hard caps that hold regardless of baseline history.
	if cur.P99Ms > maxP99 {
		fatal(fmt.Errorf("benchcheck: serve p99 %.2fms above SLO cap %.0fms", cur.P99Ms, maxP99))
	}
	if cur.ErrRate > maxErrRate {
		fatal(fmt.Errorf("benchcheck: serve error rate %.4f above cap %.4f", cur.ErrRate, maxErrRate))
	}
	if base.P99Ms <= 0 {
		fmt.Println("benchcheck: no baseline, skipping regression check")
		return
	}
	ratio := cur.P99Ms / base.P99Ms
	fmt.Printf("benchcheck: p99_ms %.2fx of baseline (%.2fms)\n", ratio, base.P99Ms)
	if ratio > 1+maxRegress {
		fatal(fmt.Errorf("benchcheck: serve p99 regressed %.0f%% (limit %.0f%%)",
			100*(ratio-1), 100*maxRegress))
	}
}

// writeAndLoadBaseline reads the baseline JSON into base (leaving it zeroed
// when the file is missing) and writes cur to outPath.
func writeAndLoadBaseline(cur, base interface{}, baselinePath, outPath string) {
	if data, err := os.ReadFile(baselinePath); err == nil {
		if err := json.Unmarshal(data, base); err != nil {
			fatal(fmt.Errorf("benchcheck: bad baseline %s: %v", baselinePath, err))
		}
	}
	data, _ := json.MarshalIndent(cur, "", "  ")
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// benchLine is one parsed `go test -bench` result line, e.g.
//
//	BenchmarkSimulatorThroughput  1  36981269 ns/op  2217653 instrs/op
//	BenchmarkSMARTSSpeedup        1  319079035 ns/op  5.688 est-relerr-%  1.180 speedup-x
type benchLine struct {
	name    string
	metrics map[string]float64
}

func benchLines(sc *bufio.Scanner) ([]benchLine, error) {
	var out []benchLine
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		// Metrics come as "<value> <unit>" pairs after the iteration count.
		metrics := map[string]float64{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcheck: bad value %q in %q", f[i], sc.Text())
			}
			metrics[f[i+1]] = v
		}
		out = append(out, benchLine{name: f[0], metrics: metrics})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
