// benchcheck parses `go test -bench` output for the simulator benchmarks on
// stdin, writes the headline numbers to a JSON file at the repo root, and
// fails (exit 1) when detailed-simulation throughput has regressed more
// than -max-regress relative to the committed baseline. CI runs it after
// the benchmark step so a simulator slowdown fails the build instead of
// landing silently:
//
//	go test -run '^$' -bench 'SimulatorThroughput$|SMARTSSpeedup$' -benchtime=1x . |
//	    go run ./cmd/benchcheck -baseline BENCH_sim.json -out BENCH_sim.json
//
// Regenerate the baseline by committing the freshly written file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Numbers is the schema of BENCH_sim.json.
type Numbers struct {
	// InstrsPerSec is detailed-simulation throughput from
	// BenchmarkSimulatorThroughput (committed instructions per second).
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// SMARTSSpeedupX is the detailed/sampled wall-clock ratio from
	// BenchmarkSMARTSSpeedup.
	SMARTSSpeedupX float64 `json:"smarts_speedup_x"`
	// SMARTSRelErrPct is the sampled estimate's relative error (%) from
	// the same benchmark.
	SMARTSRelErrPct float64 `json:"smarts_est_relerr_pct"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_sim.json", "committed baseline to compare against (missing file skips the check)")
	outPath := flag.String("out", "BENCH_sim.json", "where to write the fresh numbers")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum tolerated fractional throughput regression")
	flag.Parse()

	cur, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}

	var base *Numbers
	if data, err := os.ReadFile(*baselinePath); err == nil {
		base = &Numbers{}
		if err := json.Unmarshal(data, base); err != nil {
			fatal(fmt.Errorf("benchcheck: bad baseline %s: %v", *baselinePath, err))
		}
	}

	data, _ := json.MarshalIndent(cur, "", "  ")
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("benchcheck: %.3g instrs/sec, SMARTS %.2fx (%.1f%% err)\n",
		cur.InstrsPerSec, cur.SMARTSSpeedupX, cur.SMARTSRelErrPct)
	if base == nil || base.InstrsPerSec <= 0 {
		fmt.Println("benchcheck: no baseline, skipping regression check")
		return
	}
	ratio := cur.InstrsPerSec / base.InstrsPerSec
	fmt.Printf("benchcheck: throughput %.2fx of baseline (%.3g instrs/sec)\n", ratio, base.InstrsPerSec)
	if ratio < 1-*maxRegress {
		fatal(fmt.Errorf("benchcheck: simulator throughput regressed %.0f%% (limit %.0f%%)",
			100*(1-ratio), 100**maxRegress))
	}
}

// parse extracts the metrics from `go test -bench` result lines, e.g.
//
//	BenchmarkSimulatorThroughput  1  36981269 ns/op  2217653 instrs/op
//	BenchmarkSMARTSSpeedup        1  319079035 ns/op  5.688 est-relerr-%  1.180 speedup-x
func parse(sc *bufio.Scanner) (*Numbers, error) {
	n := &Numbers{}
	var haveThroughput, haveSMARTS bool
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		// Metrics come as "<value> <unit>" pairs after the iteration count.
		metrics := map[string]float64{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcheck: bad value %q in %q", f[i], sc.Text())
			}
			metrics[f[i+1]] = v
		}
		switch {
		case strings.HasPrefix(f[0], "BenchmarkSimulatorThroughput"):
			if metrics["ns/op"] > 0 {
				n.InstrsPerSec = metrics["instrs/op"] / (metrics["ns/op"] * 1e-9)
				haveThroughput = true
			}
		case strings.HasPrefix(f[0], "BenchmarkSMARTSSpeedup"):
			n.SMARTSSpeedupX = metrics["speedup-x"]
			n.SMARTSRelErrPct = metrics["est-relerr-%"]
			haveSMARTS = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveThroughput || !haveSMARTS {
		return nil, fmt.Errorf("benchcheck: missing benchmark output (throughput=%v smarts=%v)", haveThroughput, haveSMARTS)
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
