// empirico drives the paper's experiments: it builds empirical models over
// the joint compiler/microarchitecture space and regenerates the tables and
// figures of the evaluation section.
//
// Usage:
//
//	empirico -exp space                  # Tables 1, 2 and 5 (the spaces)
//	empirico -exp fig3                   # unrolling × icache sweep on art
//	empirico -exp table3 -scale quick    # model accuracy comparison
//	empirico -exp all -programs 179.art,181.mcf
//	empirico -exp table7 -cache .empirico-cache
//	empirico -exp lopo -gen 100 -folds 8 # cross-program generalization
//
// Experiments sharing measurements reuse them within a run, and across runs
// when -cache is set.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/dist"
	"repro/internal/doe"
	"repro/internal/exp"
	"repro/internal/farm"
	"repro/internal/model"
	"repro/internal/wlgen"
	"repro/internal/workloads"
)

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment: space|fig3|table3|table4|fig5|fig6|table6|fig7|table7|lopo|all")
		scale    = flag.String("scale", "default", "scale: quick|default|paper")
		programs = flag.String("programs", "", "comma-separated benchmark subset (default: all seven)")
		seed     = flag.Int64("seed", 1, "random seed for designs and search")
		cacheDir = flag.String("cache", "", "directory for the measurement cache")
		jsonPath = flag.String("json", "", "also write machine-readable results to this file")
		workers  = flag.Int("workers", 0, "measurement farm + analytics workers (0 = GOMAXPROCS, 1 = serial; results identical)")
		waddrs   = flag.String("workers-addrs", "", "comma-separated empirico-worker addresses; measurements shard across them instead of running in-process (results identical)")
		ctrlAddr = flag.String("control-addr", "", "serve the coordinator control API (worker register/deregister) on this address; implies an elastic fleet, usable with an empty -workers-addrs")
		quiet    = flag.Bool("q", false, "suppress progress output")

		// -exp lopo only: leave-one-program-out over the seed suite plus a
		// generated corpus.
		genN     = flag.Int("gen", 100, "lopo: wlgen programs added to the seed suite")
		genSeed  = flag.Int64("gen-seed", 7, "lopo: wlgen corpus seed")
		lopoPts  = flag.Int("points", 6, "lopo: measured joint points per program")
		folds    = flag.Int("folds", 0, "lopo: held-out programs evaluated (0 = all)")
		baseline = flag.Bool("baseline", false, "lopo: also fit per-program baselines on the held-out programs' own rows")
	)
	flag.Parse()

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	h := exp.NewHarness(sc)
	h.Seed = *seed
	h.CacheDir = *cacheDir
	h.Workers = *workers
	if !*quiet {
		h.Log = os.Stderr
	}
	if *waddrs != "" || *ctrlAddr != "" {
		var addrs []string
		if *waddrs != "" {
			addrs = strings.Split(*waddrs, ",")
		}
		h.MakeBackend = func(fo farm.Options) farm.Backend {
			c, err := dist.New(dist.Options{Addrs: addrs, Dynamic: *ctrlAddr != "", Store: fo.Store, Log: fo.Log})
			if err != nil {
				fatal(err)
			}
			if *ctrlAddr != "" {
				// The control listener lives as long as the process; workers
				// register and deregister against it while experiments run.
				go func() {
					if err := http.ListenAndServe(*ctrlAddr, c.Handler()); err != nil {
						fmt.Fprintln(os.Stderr, "empirico: control listener:", err)
					}
				}()
			}
			return c
		}
	}
	defer func() {
		if st := h.FarmStats(); st.Workers > 0 && !*quiet {
			fmt.Fprintln(os.Stderr, st)
		}
		if err := h.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var names []string
	if *programs != "" {
		names = strings.Split(*programs, ",")
	}

	needStudy := map[string]bool{
		"table3": true, "table4": true, "fig5": true, "fig6": true,
		"table6": true, "fig7": true, "table7": true, "all": true,
	}

	switch *expName {
	case "space":
		printSpaces()
		return
	case "fig3":
		txt, _, err := h.Fig3()
		if err != nil {
			fatal(err)
		}
		fmt.Println(txt)
		return
	case "lopo":
		if err := runLOPO(h, names, *genSeed, *genN, *lopoPts, *folds, *baseline); err != nil {
			fatal(err)
		}
		return
	}
	if !needStudy[*expName] {
		fatal(fmt.Errorf("empirico: unknown experiment %q", *expName))
	}

	study, err := h.RunStudy(names, workloads.Train)
	if err != nil {
		fatal(err)
	}
	report := exp.NewReport(study)

	show := func(name string) bool { return *expName == "all" || *expName == name }
	// Ctrl-C cancels the GA between generations (instead of hanging until
	// every remaining generation finishes); a second signal kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var searchResults []exp.SearchResult
	ensureSearch := func() {
		if searchResults == nil {
			var err error
			searchResults, err = study.SearchSettingsCtx(ctx, nil)
			if err != nil {
				fatal(err)
			}
		}
	}

	if show("table3") {
		txt, rows := study.Table3()
		report.Table3 = rows
		fmt.Println(txt)
	}
	if show("fig5") {
		txt, series := study.Fig5()
		report.Fig5 = series
		fmt.Println(txt)
	}
	if show("fig6") {
		txt, pairs := study.Fig6(nil)
		report.Fig6 = pairs
		fmt.Println(txt)
	}
	if show("table4") {
		txt, cells := study.Table4(0)
		report.Table4 = cells
		fmt.Println(txt)
	}
	if show("table6") {
		ensureSearch()
		report.AddSearch(searchResults)
		fmt.Println(exp.Table6(searchResults, h.Space()))
	}
	if show("fig7") {
		ensureSearch()
		txt, rows, err := study.Fig7(searchResults, nil)
		if err != nil {
			fatal(err)
		}
		report.Fig7 = rows
		fmt.Println(txt)
	}
	if show("table7") {
		ensureSearch()
		txt, rows, err := study.Table7(searchResults, nil)
		if err != nil {
			fatal(err)
		}
		report.Table7 = rows
		fmt.Println(txt)
	}
	if *expName == "all" {
		txt, res, err := h.Fig3()
		if err != nil {
			fatal(err)
		}
		report.Fig3 = res
		fmt.Println(txt)
	}
	if *jsonPath != "" {
		if err := report.Write(*jsonPath); err != nil {
			fatal(err)
		}
	}
}

// runLOPO builds the pooled cross-program dataset (seed suite — or the
// -programs subset — plus a generated corpus) and evaluates how well models
// fitted on every other program predict each held-out one.
func runLOPO(h *exp.Harness, names []string, genSeed int64, genN, pointsPer, folds int, baseline bool) error {
	if len(names) == 0 {
		names = workloads.Names()
	}
	ws := make([]workloads.Workload, 0, len(names)+genN)
	for _, name := range names {
		w, err := workloads.Get(name, workloads.Train)
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	for _, p := range wlgen.Corpus(genSeed, genN) {
		ws = append(ws, p.Workload())
	}
	cd, err := h.BuildCrossDataset(ws, pointsPer)
	if err != nil {
		return err
	}
	res, err := h.RunLOPO(cd, exp.LOPOOptions{
		MaxFolds: folds,
		Baseline: baseline,
		// Modest term budget: each fold refits all three techniques, and the
		// pooled 49-variable space makes full-budget MARS folds expensive
		// without improving held-out error on corpora this size.
		MARS: model.MARSOptions{MaxTerms: 21, MaxKnots: 8},
	})
	if err != nil {
		return err
	}
	fmt.Println(res.LOPOTable())
	return nil
}

func printSpaces() {
	for _, block := range []struct {
		title string
		vars  []doe.Var
	}{
		{"Table 1: compiler flags and heuristics", doe.CompilerVars()},
		{"Table 2: micro-architectural parameters", doe.MicroarchVars()},
	} {
		fmt.Println(block.title)
		fmt.Printf("  %-26s %-8s %-10s %-10s %s\n", "parameter", "kind", "low", "high", "levels")
		for _, v := range block.vars {
			kind := map[doe.VarKind]string{doe.Flag: "flag", doe.Int: "int", doe.LogInt: "log-int"}[v.Kind]
			fmt.Printf("  %-26s %-8s %-10d %-10d %d\n", v.Name, kind, v.Low, v.High, len(v.LevelValues()))
		}
		fmt.Println()
	}
	fmt.Println(exp.Table5())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
