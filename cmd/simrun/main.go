// simrun compiles a program and runs it on the cycle-level simulator at a
// chosen microarchitectural configuration, reporting cycles, IPC, cache miss
// rates and branch prediction accuracy. With -smarts it uses sampled
// simulation and reports the estimate with its confidence interval. -engine
// selects the simulation engine (feed, fused or the basic-block translated
// bb tier); all engines produce bit-identical results.
//
// Usage:
//
//	simrun -bench 181.mcf -config typical
//	simrun -bench 179.art -O3 -config aggressive -smarts
//	simrun -bench 179.art -engine fused
//	simrun -src prog.mc -mem-lat 150 -dcache-kb 8
//	simrun -bench 179.art -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/lang"
	"repro/internal/sim"
	"repro/internal/smarts"
	"repro/internal/workloads"
)

func main() {
	var (
		srcPath = flag.String("src", "", "MiniC source file")
		binPath = flag.String("bin", "", "compiled binary object (from minicc -o)")
		bench   = flag.String("bench", "", "built-in benchmark (e.g. 181.mcf)")
		input   = flag.String("input", "train", "benchmark input: train|ref")
		level   = flag.String("O", "2", "optimization level: 0|2|3")
		unroll  = flag.Bool("unroll", false, "additionally enable -funroll-loops")
		cfgName = flag.String("config", "typical", "configuration: constrained|typical|aggressive")
		useSam  = flag.Bool("smarts", false, "use SMARTS sampled simulation")
		engine  = flag.String("engine", sim.EngineBB, "simulation engine: feed|fused|bb (all bit-identical)")
		workers = flag.Int("workers", 1, "with -smarts: pool this many offset-shifted sample sets, drawn concurrently (0 = GOMAXPROCS)")
		trace   = flag.Int64("trace", 0, "print pipeline timing for the first N instructions")
		budget  = flag.Int64("max-instrs", 2_000_000_000, "instruction budget")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")

		issueWidth = flag.Int("issue-width", 0, "override issue width")
		memLat     = flag.Int("mem-lat", 0, "override memory latency")
		dcacheKB   = flag.Int("dcache-kb", 0, "override L1D size (KB)")
		icacheKB   = flag.Int("icache-kb", 0, "override L1I size (KB)")
		l2KB       = flag.Int("l2-kb", 0, "override L2 size (KB)")
		ruu        = flag.Int("ruu", 0, "override RUU size")
	)
	flag.Parse()

	var cfg sim.Config
	switch *cfgName {
	case "constrained":
		cfg = sim.Constrained()
	case "typical":
		cfg = sim.DefaultConfig()
	case "aggressive":
		cfg = sim.Aggressive()
	default:
		fatal(fmt.Errorf("simrun: unknown config %q", *cfgName))
	}
	if *issueWidth != 0 {
		cfg.IssueWidth = *issueWidth
	}
	if *memLat != 0 {
		cfg.MemLat = *memLat
	}
	if *dcacheKB != 0 {
		cfg.DCacheKB = *dcacheKB
	}
	if *icacheKB != 0 {
		cfg.ICacheKB = *icacheKB
	}
	if *l2KB != 0 {
		cfg.L2KB = *l2KB
	}
	if *ruu != 0 {
		cfg.RUUSize = *ruu
	}

	var bin *isa.Program
	var name string
	if *binPath != "" {
		f, err := os.Open(*binPath)
		if err != nil {
			fatal(err)
		}
		bin, err = isa.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		name = *binPath
	} else {
		var src string
		switch {
		case *srcPath != "":
			data, err := os.ReadFile(*srcPath)
			if err != nil {
				fatal(err)
			}
			src, name = string(data), *srcPath
		case *bench != "":
			w, err := workloads.Get(*bench, workloads.InputClass(*input))
			if err != nil {
				fatal(err)
			}
			src, name = w.Source, w.Key()
		default:
			fatal(fmt.Errorf("simrun: need -src, -bin or -bench"))
		}

		var opts compiler.Options
		switch *level {
		case "0":
			opts = compiler.O0()
		case "2":
			opts = compiler.O2()
		case "3":
			opts = compiler.O3()
		default:
			fatal(fmt.Errorf("simrun: unknown level -O%s", *level))
		}
		opts.UnrollLoops = opts.UnrollLoops || *unroll
		opts.TargetIssueWidth = cfg.IssueWidth

		prog, err := lang.Parse(src)
		if err != nil {
			fatal(err)
		}
		if err := lang.Check(prog); err != nil {
			fatal(err)
		}
		bin, _, err = compiler.Compile(prog, opts)
		if err != nil {
			fatal(err)
		}
	}

	// Profile only the simulation itself, not parsing or compilation.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *useSam {
		n := *workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		res, err := smarts.RunParallel(bin, cfg, smarts.DefaultSampler(), *budget, n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s on %s (SMARTS, %d sample sets)\n", name, *cfgName, n)
		fmt.Printf("  estimated cycles: %.0f\n", res.EstimatedCycles)
		fmt.Printf("  instructions:     %d\n", res.Instructions)
		fmt.Printf("  mean CPI:         %.3f (99.7%% CI ±%.2f%%)\n", res.MeanCPI, 100*res.RelCI997)
		fmt.Printf("  detailed windows: %d\n", res.Windows)
		fmt.Printf("  exit value:       %d\n", res.ExitValue)
		return
	}

	var st sim.Stats
	var es sim.EngineStats
	if *trace > 0 {
		exe := sim.NewExecutor(bin)
		cpu := sim.NewCPU(cfg)
		fmt.Printf("%6s %6s %-24s %9s %9s %9s %9s\n",
			"seq", "pc", "instr", "dispatch", "issue", "done", "commit")
		cpu.Trace = func(ev sim.TraceEvent) {
			if ev.Seq < *trace {
				fmt.Printf("%6d %6d %-24s %9d %9d %9d %9d\n",
					ev.Seq, ev.PC, ev.Instr.String(), ev.Dispatch, ev.Issue, ev.Done, ev.Commit)
			}
		}
		for !exe.Halted {
			if exe.Count >= *budget {
				fatal(fmt.Errorf("simrun: instruction budget exceeded"))
			}
			entry, ok, err := exe.Step()
			if err != nil {
				fatal(err)
			}
			if !ok {
				break
			}
			cpu.Feed(&bin.Instrs[entry.PC], entry)
		}
		st = cpu.Stats()
		st.ExitValue = exe.Regs[isa.RegRV]
	} else {
		var err error
		st, es, err = sim.SimulateEngine(bin, cfg, *budget, *engine)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%s on %s\n", name, *cfgName)
	fmt.Printf("  cycles:        %d\n", st.Cycles)
	fmt.Printf("  instructions:  %d\n", st.Instructions)
	fmt.Printf("  IPC:           %.3f\n", st.IPC())
	fmt.Printf("  branches:      %d (%.2f%% mispredicted)\n", st.Branches, pct(st.Mispredicts, st.Branches))
	fmt.Printf("  IL1 misses:    %d / %d (%.2f%%)\n", st.IL1Misses, st.IL1Accesses, pct(st.IL1Misses, st.IL1Accesses))
	fmt.Printf("  DL1 misses:    %d / %d (%.2f%%)\n", st.DL1Misses, st.DL1Accesses, pct(st.DL1Misses, st.DL1Accesses))
	fmt.Printf("  L2 misses:     %d / %d (%.2f%%)\n", st.L2Misses, st.L2Accesses, pct(st.L2Misses, st.L2Accesses))
	fmt.Printf("  energy (a.u.): %.0f\n", st.Energy)
	fmt.Printf("  exit value:    %d\n", st.ExitValue)
	if *engine == sim.EngineBB && *trace == 0 {
		fmt.Printf("  engine:        bb (%d blocks, %d translated instrs, %d slow-path entries)\n",
			es.BlocksTranslated, es.TranslatedInstrs, es.SlowPathEntries)
	}
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
